/**
 * @file
 * Network-level snapshot assembly: glue between the Network's
 * serialize()/restore() and the on-disk container (file.hpp).
 *
 * Tools use three verbs:
 *   - captureNetwork() builds a SnapshotFile with META + NETW
 *     sections; the caller may append tool-specific sections (the
 *     runner's RUNR) before writing it out;
 *   - loadSnapshotFile() reads + frame-validates a snapshot path;
 *   - restoreNetwork() cross-checks the construction fingerprint and
 *     overwrites a freshly built Network's dynamic state.
 *
 * Every failure mode — I/O, corruption, truncation, version or
 * configuration mismatch — surfaces as a SnapshotError with a
 * human-readable reason; a bad snapshot can never silently resume.
 */

#ifndef NOX_SNAPSHOT_SNAPSHOT_HPP
#define NOX_SNAPSHOT_SNAPSHOT_HPP

#include <string>

#include "noc/network.hpp"
#include "snapshot/file.hpp"

namespace nox::snap {

/** Assemble a snapshot image of @p net: META (producing @p tool,
 *  cycle, construction fingerprint) followed by the complete NETW
 *  dynamic state. Call between steps only. */
SnapshotFile captureNetwork(const Network &net,
                            const std::string &tool);

/** Read and frame-validate the snapshot at @p path. Throws
 *  SnapshotError on I/O failure, corruption, truncation or an
 *  unsupported version. */
SnapshotFile loadSnapshotFile(const std::string &path);

/**
 * Restore @p net — freshly constructed with the same configuration —
 * from @p file. The META fingerprint must match net.fingerprint();
 * on success the network is bit-identical to the captured one and
 * the META record is returned (the caller resumes at meta.cycle).
 */
SnapshotMeta restoreNetwork(Network &net, const SnapshotFile &file);

} // namespace nox::snap

#endif // NOX_SNAPSHOT_SNAPSHOT_HPP
