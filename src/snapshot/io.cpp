#include "snapshot/io.hpp"

namespace nox::snap {

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len)
{
    // CRC-32C (Castagnoli), bitwise — identical math to the
    // link-level wireChecksum() in noc/flit.cpp.
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    return crc ^ 0xFFFFFFFFu;
}

std::string
fourccName(std::uint32_t tag)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        const char c =
            static_cast<char>((tag >> (8 * i)) & 0xFFu);
        s.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
    }
    return s;
}

void
checkTag(Reader &r, std::uint32_t expect)
{
    const std::uint32_t got = r.u32();
    if (got != expect) {
        r.fail("component tag mismatch: expected '" +
               fourccName(expect) + "', found '" + fourccName(got) +
               "'");
    }
}

} // namespace nox::snap
