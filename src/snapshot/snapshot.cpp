#include "snapshot/snapshot.hpp"

namespace nox::snap {

SnapshotFile
captureNetwork(const Network &net, const std::string &tool)
{
    SnapshotFile image;

    SnapshotMeta meta;
    meta.tool = tool;
    meta.cycle = net.now();
    meta.fingerprint = net.fingerprint();
    Writer mw;
    encodeMeta(mw, meta);
    image.sections.push_back({kSectionMeta, mw.take()});

    Writer nw;
    net.serialize(nw);
    image.sections.push_back({kSectionNetwork, nw.take()});
    return image;
}

SnapshotFile
loadSnapshotFile(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    return decodeSnapshotFile(bytes.data(), bytes.size());
}

SnapshotMeta
restoreNetwork(Network &net, const SnapshotFile &file)
{
    const Section &msec = file.require(kSectionMeta);
    Reader mr(msec.payload.data(), msec.payload.size());
    const SnapshotMeta meta = decodeMeta(mr);

    const std::string want = net.fingerprint();
    if (meta.fingerprint != want) {
        throw SnapshotError(
            "snapshot was taken from a different configuration:\n"
            "  snapshot: " +
            meta.fingerprint + "\n  this run: " + want);
    }

    const Section &nsec = file.require(kSectionNetwork);
    Reader nr(nsec.payload.data(), nsec.payload.size());
    net.restore(nr);
    nr.expectEnd();
    return meta;
}

} // namespace nox::snap
