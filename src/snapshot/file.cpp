#include "snapshot/file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace nox::snap {

const Section *
SnapshotFile::find(std::uint32_t tag) const
{
    for (const Section &s : sections)
        if (s.tag == tag)
            return &s;
    return nullptr;
}

const Section &
SnapshotFile::require(std::uint32_t tag) const
{
    const Section *s = find(tag);
    if (!s) {
        throw SnapshotError("snapshot is missing required section '" +
                            fourccName(tag) + "'");
    }
    return *s;
}

std::vector<std::uint8_t>
encodeSnapshotFile(const SnapshotFile &f)
{
    Writer w;
    w.bytes(reinterpret_cast<const std::uint8_t *>(kMagic),
            sizeof(kMagic));
    w.u32(f.version);
    w.u32(static_cast<std::uint32_t>(f.sections.size()));
    for (const Section &s : f.sections) {
        w.u32(s.tag);
        w.u64(s.payload.size());
        w.bytes(s.payload.data(), s.payload.size());
        w.u32(crc32c(s.payload.data(), s.payload.size()));
    }
    return w.take();
}

SnapshotFile
decodeSnapshotFile(const std::uint8_t *data, std::size_t size)
{
    Reader r(data, size);
    std::uint8_t magic[sizeof(kMagic)];
    if (r.remaining() < sizeof(kMagic))
        throw SnapshotError("not a snapshot: file shorter than magic");
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw SnapshotError(
            "not a snapshot: bad magic (expected \"NOXSNAP1\")");
    }
    SnapshotFile f;
    f.version = r.u32();
    if (f.version != kSnapshotVersion) {
        throw SnapshotError(
            "unsupported snapshot version " +
            std::to_string(f.version) + " (this build reads version " +
            std::to_string(kSnapshotVersion) + ")");
    }
    const std::uint32_t count = r.u32();
    f.sections.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        s.tag = r.u32();
        const std::uint64_t len = r.u64();
        if (len > r.remaining()) {
            throw SnapshotError(
                "truncated snapshot: section '" + fourccName(s.tag) +
                "' declares " + std::to_string(len) +
                " bytes but only " + std::to_string(r.remaining()) +
                " remain");
        }
        s.payload.resize(static_cast<std::size_t>(len));
        if (len > 0)
            r.bytes(s.payload.data(), s.payload.size());
        const std::uint32_t stored = r.u32();
        const std::uint32_t actual =
            crc32c(s.payload.data(), s.payload.size());
        if (stored != actual) {
            throw SnapshotError(
                "corrupt snapshot: CRC-32C mismatch in section '" +
                fourccName(s.tag) + "'");
        }
        f.sections.push_back(std::move(s));
    }
    r.expectEnd();
    return f;
}

namespace {

[[noreturn]] void
ioFail(const std::string &op, const std::string &path)
{
    throw SnapshotError(op + " failed for '" + path +
                        "': " + std::strerror(errno));
}

} // namespace

void
writeSnapshotFileAtomic(const std::string &path,
                        const std::vector<std::uint8_t> &image,
                        int keep)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        ioFail("open", tmp);
    std::size_t done = 0;
    while (done < image.size()) {
        const ssize_t n =
            ::write(fd, image.data() + done, image.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ioFail("write", tmp);
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ioFail("fsync", tmp);
    }
    if (::close(fd) != 0)
        ioFail("close", tmp);

    // Rotate the existing chain: path.(K-2) -> path.(K-1), ...,
    // path -> path.1. rename(2) failures other than "source does not
    // exist" are real errors.
    if (keep > 1) {
        for (int k = keep - 2; k >= 0; --k) {
            const std::string src =
                k == 0 ? path : path + "." + std::to_string(k);
            const std::string dst = path + "." + std::to_string(k + 1);
            if (::rename(src.c_str(), dst.c_str()) != 0 &&
                errno != ENOENT) {
                ioFail("rename", src);
            }
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        ioFail("rename", tmp);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SnapshotError("cannot open snapshot '" + path +
                            "' for reading");
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw SnapshotError("read failed for '" + path + "'");
    return bytes;
}

void
encodeMeta(Writer &w, const SnapshotMeta &m)
{
    w.str(m.tool);
    w.u64(m.cycle);
    w.str(m.fingerprint);
}

SnapshotMeta
decodeMeta(Reader &r)
{
    SnapshotMeta m;
    m.tool = r.str();
    m.cycle = r.u64();
    m.fingerprint = r.str();
    return m;
}

} // namespace nox::snap
