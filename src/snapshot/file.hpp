/**
 * @file
 * On-disk snapshot container: versioned, CRC-32C-framed sections.
 *
 * Layout (all integers little-endian):
 *
 *     magic    8 bytes   "NOXSNAP1"
 *     version  u32       kSnapshotVersion
 *     count    u32       number of sections
 *     then per section:
 *       tag    u32       fourcc ('META', 'NETW', 'RUNR', ...)
 *       len    u64       payload byte count
 *       payload len bytes
 *       crc    u32       CRC-32C of the payload bytes
 *
 * Every section is independently integrity-checked; decode rejects
 * bad magic, unknown versions, truncation and CRC mismatches with a
 * structured SnapshotError — a corrupt file can never silently
 * resume wrong.
 *
 * Files are written crash-safely: the full image goes to
 * "<path>.tmp", is fsync'd, existing snapshots rotate to
 * "<path>.1" .. "<path>.K-1", then the temp file is atomically
 * renamed over <path>. A crash at any point leaves either the old
 * snapshot chain or the new one — never a half-written file at the
 * resume path.
 */

#ifndef NOX_SNAPSHOT_FILE_HPP
#define NOX_SNAPSHOT_FILE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/io.hpp"

namespace nox::snap {

inline constexpr char kMagic[8] = {'N', 'O', 'X', 'S',
                                   'N', 'A', 'P', '1'};
/** v2: stateful arbiters serialize a perturb counter after their
 *  priority state (see Arbiter::perturb). */
inline constexpr std::uint32_t kSnapshotVersion = 2;

inline constexpr std::uint32_t kSectionMeta = fourcc("META");
inline constexpr std::uint32_t kSectionNetwork = fourcc("NETW");
inline constexpr std::uint32_t kSectionRunner = fourcc("RUNR");

/** One framed section: a tagged, CRC-guarded payload. */
struct Section
{
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
};

/** A decoded snapshot container. */
struct SnapshotFile
{
    std::uint32_t version = kSnapshotVersion;
    std::vector<Section> sections;

    /** First section with @p tag, or nullptr. */
    const Section *find(std::uint32_t tag) const;

    /** First section with @p tag; throws SnapshotError if absent. */
    const Section &require(std::uint32_t tag) const;
};

/** Serialize the container (magic + version + framed sections). */
std::vector<std::uint8_t> encodeSnapshotFile(const SnapshotFile &f);

/**
 * Parse and integrity-check a container image. Throws SnapshotError
 * on bad magic, unsupported version, truncation or CRC mismatch.
 */
SnapshotFile decodeSnapshotFile(const std::uint8_t *data,
                                std::size_t size);

/**
 * Crash-safe write: temp file + fsync + rotation + atomic rename.
 * @p keep is the total number of snapshots retained (the live file
 * plus keep-1 rotated predecessors); keep <= 1 disables rotation.
 * Throws SnapshotError on any I/O failure.
 */
void writeSnapshotFileAtomic(const std::string &path,
                             const std::vector<std::uint8_t> &image,
                             int keep);

/** Read a whole file; throws SnapshotError on I/O failure. */
std::vector<std::uint8_t> readFileBytes(const std::string &path);

/**
 * Identity card stored in every snapshot's META section, decodable
 * without any simulator headers (trace_tool snapshot-info).
 */
struct SnapshotMeta
{
    std::string tool;        ///< producer ("noxsim", "nettest", ...)
    std::uint64_t cycle = 0; ///< network cycle at capture
    std::string fingerprint; ///< construction-config identity string
};

void encodeMeta(Writer &w, const SnapshotMeta &m);
SnapshotMeta decodeMeta(Reader &r);

} // namespace nox::snap

#endif // NOX_SNAPSHOT_FILE_HPP
