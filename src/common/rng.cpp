#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce
    // four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    NOX_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    NOX_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDoubleOpen()
{
    return 1.0 - nextDouble();
}

bool
Rng::nextBernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextPareto(double alpha, double xmin)
{
    NOX_ASSERT(alpha > 0.0 && xmin > 0.0, "invalid Pareto parameters");
    const double u = nextDoubleOpen();
    return xmin / std::pow(u, 1.0 / alpha);
}

double
Rng::nextExponential(double mean)
{
    NOX_ASSERT(mean > 0.0, "invalid exponential mean");
    return -mean * std::log(nextDoubleOpen());
}

std::uint64_t
Rng::nextGeometric(double p)
{
    NOX_ASSERT(p > 0.0 && p <= 1.0, "invalid geometric probability");
    if (p >= 1.0)
        return 0;
    const double u = nextDoubleOpen();
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

Rng
Rng::split(std::uint64_t salt)
{
    return Rng(mix64(next() ^ mix64(salt)));
}

void
Rng::serialize(snap::Writer &w) const
{
    for (std::uint64_t word : s_)
        w.u64(word);
}

void
Rng::restore(snap::Reader &r)
{
    for (std::uint64_t &word : s_)
        word = r.u64();
}

} // namespace nox
