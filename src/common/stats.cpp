#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

void
SampleStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
SampleStats::merge(const SampleStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

double
SampleStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets,
                     bool auto_widen)
    : width_(bucket_width), autoWiden_(auto_widen),
      counts_(num_buckets, 0)
{
    NOX_ASSERT(bucket_width > 0.0 && num_buckets > 0,
               "invalid histogram shape");
}

void
Histogram::widen()
{
    const std::size_t n = counts_.size();
    const std::size_t keep = (n + 1) / 2;
    for (std::size_t i = 0; i < keep; ++i)
        counts_[i] = counts_[2 * i] +
                     (2 * i + 1 < n ? counts_[2 * i + 1] : 0);
    std::fill(counts_.begin() + static_cast<std::ptrdiff_t>(keep),
              counts_.end(), 0);
    width_ *= 2.0;
    ++widenings_;
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0.0)
        x = 0.0;
    if (autoWiden_) {
        while (x / width_ >= static_cast<double>(counts_.size()))
            widen();
    }
    const auto idx = static_cast<std::size_t>(x / width_);
    if (idx >= counts_.size()) {
        ++overflow_;
    } else {
        ++counts_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(counts_[i]);
            return (static_cast<double>(i) + frac) * width_;
        }
        cum = next;
    }
    return width_ * static_cast<double>(counts_.size());
}

void
SampleStats::serialize(snap::Writer &w) const
{
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
}

void
SampleStats::restore(snap::Reader &r)
{
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
}

void
Histogram::serialize(snap::Writer &w) const
{
    w.f64(width_);
    w.u32(widenings_);
    w.u64(counts_.size());
    for (std::uint64_t c : counts_)
        w.u64(c);
    w.u64(overflow_);
    w.u64(total_);
}

void
Histogram::restore(snap::Reader &r)
{
    width_ = r.f64();
    widenings_ = r.u32();
    const std::uint64_t n = r.u64();
    if (n != counts_.size())
        r.fail("histogram bucket-count mismatch (wrong geometry)");
    for (std::uint64_t &c : counts_)
        c = r.u64();
    overflow_ = r.u64();
    total_ = r.u64();
}

void
Ewma::add(double x)
{
    if (!primed_) {
        value_ = x;
        primed_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
}

void
Ewma::reset()
{
    value_ = 0.0;
    primed_ = false;
}

} // namespace nox
