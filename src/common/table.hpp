/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the
 * rows/series of each paper figure and table in a uniform format.
 */

#ifndef NOX_COMMON_TABLE_HPP
#define NOX_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace nox {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render with column padding to the stream. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (quotes fields containing commas,
     *  quotes or newlines) for plot scripts. */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nox

#endif // NOX_COMMON_TABLE_HPP
