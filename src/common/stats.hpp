/**
 * @file
 * Statistics primitives used by the simulator and benchmarks.
 *
 * SampleStats accumulates streaming mean/variance/min/max (Welford);
 * Histogram buckets samples for percentile queries; Counter is a named
 * monotonically increasing event count used by the power model.
 */

#ifndef NOX_COMMON_STATS_HPP
#define NOX_COMMON_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/** Streaming sample statistics (Welford's online algorithm). */
class SampleStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const SampleStats &other);

    void reset();

    std::uint64_t count() const { return n_; }
    double sum() const { return mean_ * static_cast<double>(n_); }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Exact (bit-level) accumulator equality — used by the kernel
     *  equivalence checks, where "close" is not good enough. */
    bool identicalTo(const SampleStats &other) const
    {
        return n_ == other.n_ && mean_ == other.mean_ &&
               m2_ == other.m2_ && min_ == other.min_ &&
               max_ == other.max_;
    }

    /** Bit-exact accumulator capture / restore (checkpointing). */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width bucket histogram over [0, bucketWidth*numBuckets), with
 * an overflow bucket. Supports approximate percentile queries.
 *
 * With auto_widen the range grows to fit the data: a sample past the
 * upper bound merges adjacent bucket pairs (doubling the bucket width,
 * keeping the bucket count) until it fits. Widening is a pure function
 * of the sample sequence, so identicalTo() still certifies identical
 * histories across runs. Resolution degrades gracefully — quantiles of
 * a widened histogram are coarser, never silently clipped.
 */
class Histogram
{
  public:
    Histogram(double bucket_width, std::size_t num_buckets,
              bool auto_widen = false);

    void add(double x);
    void reset();

    std::uint64_t count() const { return total_; }
    double bucketWidth() const { return width_; }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t overflowCount() const { return overflow_; }

    /** Times the bucket width has doubled to fit a sample. */
    std::uint32_t widenings() const { return widenings_; }

    /**
     * Approximate p-quantile (0 <= p <= 1) via linear interpolation
     * inside the containing bucket. Returns the histogram upper bound
     * if the quantile falls in the overflow bucket.
     */
    double quantile(double p) const;

    /** quantile() with p in percent (50 -> median, 99 -> p99). */
    double percentile(double pct) const { return quantile(pct / 100.0); }

    /** Exact equality of geometry and every bucket count. */
    bool identicalTo(const Histogram &other) const
    {
        return width_ == other.width_ && counts_ == other.counts_ &&
               overflow_ == other.overflow_ && total_ == other.total_;
    }

    /** Capture / restore counts and widening state (checkpointing).
     *  Bucket count and auto-widen flag are construction geometry and
     *  must already match; restore() checks and throws otherwise. */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    /** Merge adjacent bucket pairs: same bucket count, double width. */
    void widen();

    double width_;
    bool autoWiden_ = false;
    std::uint32_t widenings_ = 0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Named monotonically increasing event counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : name_(std::move(name)) {}

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * Exponentially weighted moving average, used for warm-up detection in
 * open-loop simulations.
 */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    void add(double x);
    double value() const { return value_; }
    bool valid() const { return primed_; }
    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool primed_ = false;
};

} // namespace nox

#endif // NOX_COMMON_STATS_HPP
