/**
 * @file
 * Simple key=value configuration store.
 *
 * Every benchmark and example binary accepts `key=value` pairs on the
 * command line (and `--file <path>` to load the same syntax from a
 * file). Typed getters with defaults keep call sites terse; unknown
 * keys can be audited with unusedKeys() so typos fail loudly.
 */

#ifndef NOX_COMMON_CONFIG_HPP
#define NOX_COMMON_CONFIG_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nox {

/** Mutable key=value configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse command-line arguments of the form key=value. The token
     * `--file <path>` loads a config file in place. Returns leftover
     * positional arguments (tokens without '=').
     */
    std::vector<std::string> parseArgs(int argc, const char *const *argv);

    /** Load `key = value` lines from a file ('#' starts a comment). */
    void loadFile(const std::string &path);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** True if the key was explicitly set. */
    bool has(const std::string &key) const;

    /** Typed getters; fall back to @p def when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    /** Parse a comma-separated list of doubles. */
    std::vector<double> getDoubleList(const std::string &key) const;

    /** Parse a comma-separated list of strings. */
    std::vector<std::string> getStringList(const std::string &key) const;

    /** Keys that were set but never read (likely typos). */
    std::vector<std::string> unusedKeys() const;

    /**
     * Fatal error if any key was set but never read. Call after all
     * getters have run so a typo (`fault_sede=...`) or an unknown key
     * aborts the run with the full offender list instead of silently
     * no-opping a fault campaign or checkpoint config.
     */
    void requireAllUsed(const std::string &context) const;

    /** All key=value pairs, sorted by key (for reproducibility logs). */
    std::vector<std::pair<std::string, std::string>> items() const;

  private:
    const std::string *find(const std::string &key) const;

    std::map<std::string, std::string> values_;
    mutable std::set<std::string> touched_;
};

} // namespace nox

#endif // NOX_COMMON_CONFIG_HPP
