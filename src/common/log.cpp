#include "common/log.hpp"

namespace nox {
namespace detail {

LogLevel &
logLevel()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

std::ostream *&
logStream()
{
    static std::ostream *os = &std::cerr;
    return os;
}

void
emit(LogLevel level, std::string_view tag, const std::string &msg)
{
    // Errors (fatal/panic) are always emitted regardless of verbosity.
    if (level != LogLevel::Error &&
        static_cast<int>(level) > static_cast<int>(logLevel())) {
        return;
    }
    std::ostream &os = logStream() ? *logStream() : std::cerr;
    os << tag << ": " << msg << '\n';
}

} // namespace detail

void
setLogLevel(LogLevel level)
{
    detail::logLevel() = level;
}

LogLevel
logLevel()
{
    return detail::logLevel();
}

void
setLogStream(std::ostream *os)
{
    detail::logStream() = os ? os : &std::cerr;
}

} // namespace nox
