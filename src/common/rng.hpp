/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * A self-contained xoshiro256** implementation is used instead of
 * std::mt19937 so that simulation results are bit-identical across
 * standard-library implementations. Distribution helpers cover the
 * needs of the traffic generators (uniform, Bernoulli, bounded Pareto,
 * exponential, geometric).
 */

#ifndef NOX_COMMON_RNG_HPP
#define NOX_COMMON_RNG_HPP

#include <cstdint>

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/**
 * xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, and good
 * statistical quality for simulation purposes (not cryptographic).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed in place (same expansion as the constructor). */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in (0, 1] — safe as log() argument. */
    double nextDoubleOpen();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBernoulli(double p);

    /**
     * Pareto-distributed value with shape @p alpha and minimum
     * (scale) @p xmin. Mean is alpha*xmin/(alpha-1) for alpha > 1.
     */
    double nextPareto(double alpha, double xmin);

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Geometric number of failures before first success, P(succ)=p. */
    std::uint64_t nextGeometric(double p);

    /**
     * Split off an independent stream: hashes this generator's next
     * output with @p salt so per-node generators do not correlate.
     */
    Rng split(std::uint64_t salt);

    /** Capture / restore the full 256-bit state (checkpointing). */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    std::uint64_t s_[4];
};

/** splitmix64 step, also useful as a cheap 64-bit hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix (finalizer of splitmix64). */
std::uint64_t mix64(std::uint64_t x);

} // namespace nox

#endif // NOX_COMMON_RNG_HPP
