#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace nox {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NOX_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    NOX_ASSERT(row.size() == headers_.size(),
               "row arity mismatch: got ", row.size(), " want ",
               headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

namespace {

void
csvField(std::ostream &os, const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        os << field;
        return;
    }
    os << '"';
    for (char c : field) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            csvField(os, row[c]);
            os << (c + 1 == row.size() ? "" : ",");
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "" : "  ");
        }
        os << '\n';
    };

    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 != widths.size())
            rule.append("  ");
    }
    os << rule << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace nox
