/**
 * @file
 * Lightweight logging and error-reporting helpers.
 *
 * Follows the gem5 convention: inform() for status, warn() for suspect
 * but survivable conditions, fatal() for user errors (clean exit) and
 * panic() for internal invariant violations (abort).
 */

#ifndef NOX_COMMON_LOG_HPP
#define NOX_COMMON_LOG_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace nox {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel : int {
    Silent = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

namespace detail {

/** Process-wide log verbosity (defaults to Warn). */
LogLevel &logLevel();

/** Stream used for log output (defaults to std::cerr). */
std::ostream *&logStream();

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(LogLevel level, std::string_view tag, const std::string &msg);

} // namespace detail

/** Set the global verbosity threshold. */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** Redirect log output (pass nullptr to restore std::cerr). */
void setLogStream(std::ostream *os);

/** Informative status message; never indicates a problem. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Something looks off but simulation can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/** Debug-level tracing, compiled in but filtered at runtime. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

/**
 * Unrecoverable user error (bad configuration, invalid arguments).
 * Prints the message and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit(LogLevel::Error, "fatal",
                 detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Internal invariant violation (a simulator bug, not a user error).
 * Prints the message and aborts so a core/backtrace is available.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit(LogLevel::Error, "panic",
                 detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** panic() unless the given condition holds. */
#define NOX_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::nox::panic("assertion failed: ", #cond, " @ ", __FILE__,     \
                         ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                  \
    } while (0)

} // namespace nox

#endif // NOX_COMMON_LOG_HPP
