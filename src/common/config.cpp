#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace nox {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

std::vector<std::string>
Config::parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--file") {
            if (i + 1 >= argc)
                fatal("--file requires a path argument");
            loadFile(argv[++i]);
            continue;
        }
        if (arg == "--resume") {
            if (i + 1 >= argc)
                fatal("--resume requires a snapshot path argument");
            // std::string() forces the string overload: a bare
            // const char* would pick set(key, bool) via the standard
            // pointer-to-bool conversion.
            set("resume", std::string(argv[++i]));
            continue;
        }
        if (arg == "--progress") {
            set("progress", true);
            continue;
        }
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            positional.push_back(arg);
            continue;
        }
        set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
    }
    return positional;
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file: ", path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal(path, ":", lineno, ": expected key=value, got '", line,
                  "'");
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    values_[key] = oss.str();
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    // A presence check counts as a read for the unused-key audit: the
    // caller demonstrably knows about the key.
    if (values_.count(key) == 0)
        return false;
    touched_.insert(key);
    return true;
}

const std::string *
Config::find(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    touched_.insert(key);
    return &it->second;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    const std::string *v = find(key);
    return v ? *v : def;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    const std::string *v = find(key);
    if (!v)
        return def;
    try {
        return std::stoll(*v);
    } catch (...) {
        fatal("config key '", key, "' is not an integer: '", *v, "'");
    }
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    const std::string *v = find(key);
    if (!v)
        return def;
    try {
        return std::stoull(*v);
    } catch (...) {
        fatal("config key '", key, "' is not an unsigned integer: '", *v,
              "'");
    }
}

double
Config::getDouble(const std::string &key, double def) const
{
    const std::string *v = find(key);
    if (!v)
        return def;
    try {
        return std::stod(*v);
    } catch (...) {
        fatal("config key '", key, "' is not a number: '", *v, "'");
    }
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const std::string *v = find(key);
    if (!v)
        return def;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("config key '", key, "' is not a boolean: '", *v, "'");
}

std::vector<double>
Config::getDoubleList(const std::string &key) const
{
    std::vector<double> out;
    for (const auto &tok : getStringList(key)) {
        try {
            out.push_back(std::stod(tok));
        } catch (...) {
            fatal("config key '", key, "' has a non-numeric element: '",
                  tok, "'");
        }
    }
    return out;
}

std::vector<std::string>
Config::getStringList(const std::string &key) const
{
    std::vector<std::string> out;
    const std::string *v = find(key);
    if (!v)
        return out;
    std::stringstream ss(*v);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        tok = trim(tok);
        if (!tok.empty())
            out.push_back(tok);
    }
    return out;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (!touched_.count(k))
            out.push_back(k);
    }
    return out;
}

void
Config::requireAllUsed(const std::string &context) const
{
    const std::vector<std::string> unused = unusedKeys();
    if (unused.empty())
        return;
    std::ostringstream oss;
    for (const auto &k : unused)
        oss << "\n  " << k << " = " << values_.at(k);
    fatal(context, ": unknown config key(s) — misspelled or not "
          "supported by this tool:", oss.str());
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    return {values_.begin(), values_.end()};
}

} // namespace nox
