#include "obs/obs_params.hpp"

#include "common/config.hpp"

namespace nox {

ObsParams
obsParamsFromConfig(const Config &config)
{
    ObsParams obs;

    obs.trace.enabled =
        config.getBool("trace", false) || config.has("trace_file");
    obs.trace.capacity = static_cast<std::size_t>(config.getUint(
        "trace_capacity", obs.trace.capacity));
    obs.trace.chromePath = config.getString("trace_file", "");
    obs.trace.flightPath =
        config.getString("trace_flight_file", obs.trace.flightPath);

    obs.metrics.enabled =
        config.getBool("metrics", false) || config.has("metrics_file");
    obs.metrics.interval =
        config.getUint("metrics_interval", obs.metrics.interval);
    obs.metrics.jsonlPath =
        config.getString("metrics_file", "nox-metrics.jsonl");
    obs.metrics.heatmap =
        config.getBool("metrics_heatmap", obs.metrics.heatmap);

    return obs;
}

} // namespace nox
