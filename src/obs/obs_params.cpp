#include "obs/obs_params.hpp"

#include "common/config.hpp"

namespace nox {

ObsParams
obsParamsFromConfig(const Config &config)
{
    ObsParams obs;

    obs.trace.enabled =
        config.getBool("trace", false) || config.has("trace_file");
    obs.trace.capacity = static_cast<std::size_t>(config.getUint(
        "trace_capacity", obs.trace.capacity));
    obs.trace.chromePath = config.getString("trace_file", "");
    obs.trace.flightPath =
        config.getString("trace_flight_file", obs.trace.flightPath);
    obs.trace.flightOnExit =
        config.getBool("trace_flight_on_exit", false);
    if (obs.trace.flightOnExit)
        obs.trace.enabled = true;

    obs.metrics.enabled =
        config.getBool("metrics", false) || config.has("metrics_file");
    obs.metrics.interval =
        config.getUint("metrics_interval", obs.metrics.interval);
    obs.metrics.jsonlPath =
        config.getString("metrics_file", "nox-metrics.jsonl");
    obs.metrics.heatmap =
        config.getBool("metrics_heatmap", obs.metrics.heatmap);

    obs.prov.enabled = config.getBool("provenance", false) ||
                       config.has("provenance_file");
    obs.prov.jsonlPath = config.getString("provenance_file", "");

    obs.profile.enabled = config.getBool("profile", false) ||
                          config.has("profile_file");
    obs.profile.jsonlPath = config.getString("profile_file", "");

    obs.telemetry.progress = config.getBool("progress", false);
    obs.telemetry.enabled = config.getBool("telemetry", false) ||
                            config.has("telemetry_file") ||
                            obs.telemetry.progress;
    obs.telemetry.interval = config.getUint("telemetry_interval",
                                            obs.telemetry.interval);
    obs.telemetry.jsonlPath = config.getString("telemetry_file", "");

    obs.digest.enabled = config.getBool("digest", false) ||
                         config.has("digest_file");
    obs.digest.interval =
        config.getUint("digest_interval", obs.digest.interval);
    obs.digest.jsonlPath = config.getString("digest_file", "");

    return obs;
}

} // namespace nox
