/**
 * @file
 * Observability configuration: tracing + metrics, parsed from the
 * shared key=value Config so every tool (noxsim, nettest, benches)
 * accepts the same `trace_*` / `metrics_*` knobs.
 */

#ifndef NOX_OBS_OBS_PARAMS_HPP
#define NOX_OBS_OBS_PARAMS_HPP

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_recorder.hpp"

namespace nox {

class Config;

/** Combined observability switchboard for one Network. */
struct ObsParams
{
    TraceParams trace;
    MetricsParams metrics;
    ProvenanceParams prov;
    ProfilerParams profile;
    TelemetryParams telemetry;
    DigestParams digest;

    bool
    any() const
    {
        return trace.enabled || metrics.enabled || prov.enabled ||
               profile.enabled || telemetry.enabled || digest.enabled;
    }
};

/**
 * Read the observability keys from @p config:
 *   trace=            master switch for event tracing (default false)
 *   trace_capacity=   ring size in events (default 65536)
 *   trace_file=       Chrome trace_event JSON export path; setting it
 *                     implies trace=true (default: no export)
 *   trace_flight_file= flight-recorder dump path (default
 *                     nox-flight.jsonl; "" disables the file write)
 *   trace_flight_on_exit= also dump the ring at end of run without a
 *                     failure trigger (for offline `trace_tool
 *                     analyze`); implies trace=true (default false)
 *   metrics=          master switch for time-series sampling
 *   metrics_interval= cycles per sampling window (default 256)
 *   metrics_file=     JSONL export path; setting it implies
 *                     metrics=true (default nox-metrics.jsonl)
 *   metrics_heatmap=  print the link-utilization heatmap (default
 *                     true when metrics are enabled)
 *   provenance=       master switch for per-packet latency
 *                     provenance (default false)
 *   provenance_file=  JSONL export path for the aggregated latency
 *                     breakdowns; setting it implies provenance=true
 *                     (default: no export)
 *   profile=          master switch for the simulator self-profiler
 *                     (phase timers + per-router work; default false)
 *   profile_file=     profile JSONL export path; setting it implies
 *                     profile=true (default: no export)
 *   telemetry=        master switch for the run-telemetry heartbeat
 *                     (default false)
 *   telemetry_interval= cycles between heartbeats (default 50000)
 *   telemetry_file=   heartbeat JSONL export path; setting it
 *                     implies telemetry=true (default: no export)
 *   progress=         mirror a one-line heartbeat to stderr; implies
 *                     telemetry=true (tools also accept --progress)
 *   digest=           master switch for the state-digest ledger
 *                     (default false)
 *   digest_interval=  cycles between ledger strides (default 1000)
 *   digest_file=      JSONL ledger export path; setting it implies
 *                     digest=true (default: in-memory only)
 */
ObsParams obsParamsFromConfig(const Config &config);

} // namespace nox

#endif // NOX_OBS_OBS_PARAMS_HPP
