/**
 * @file
 * Live run telemetry: a periodic heartbeat for long runs.
 *
 * Multi-hour soaks and big sweeps used to print nothing until they
 * finished. With telemetry enabled the Network emits one JSONL record
 * every `telemetry_interval` cycles — instantaneous and cumulative
 * simulated cycles/s, ETA against a target cycle count, active-set
 * sizes, in-flight packet count, FlitArena allocator stats, fault and
 * retry counters, peak RSS and the age of the last checkpoint — and
 * optionally mirrors a compact one-line rendering to stderr
 * (`--progress`). nettest reuses the same line formatter for its
 * per-phase summaries.
 *
 * Like every observer, telemetry is nullptr-when-off on the Network
 * and strictly read-only with respect to simulation state: it reads
 * committed counters and the wall clock, and writes only to its own
 * file/stderr, so enabling it cannot perturb a run (enforced by the
 * observer-effect test). Wall-clock state is inherently per-process,
 * so telemetry is neither checkpointed nor part of the construction
 * fingerprint — a resumed run may freely toggle it.
 */

#ifndef NOX_OBS_TELEMETRY_HPP
#define NOX_OBS_TELEMETRY_HPP

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "noc/types.hpp"

namespace nox {

/** Telemetry configuration (see obsParamsFromConfig for the keys). */
struct TelemetryParams
{
    bool enabled = false;
    Cycle interval = 50000; ///< cycles between heartbeats
    std::string jsonlPath;  ///< JSONL export path ("" = no file)
    bool progress = false;  ///< mirror a one-line beat to stderr
};

/** Simulation-state inputs for one heartbeat (gathered by the
 *  Network; everything here is a read of committed state). */
struct TelemetrySample
{
    Cycle cycle = 0;
    int activeRouters = 0;
    int activeNics = 0;
    std::uint64_t packetsInFlight = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t e2eRetransmits = 0;
    std::uint64_t dupSuppressed = 0;
    std::uint64_t healsApplied = 0; ///< link + router heals
    std::uint64_t deadEntities = 0; ///< dead routers + explicit links
    std::uint64_t arenaLive = 0;
    std::uint64_t arenaGrowths = 0;
    std::int64_t checkpointAge = -1; ///< cycles; -1 = no checkpoint
    std::int64_t digestStrides = -1; ///< ledger strides (-1 = off)
    std::int64_t lastDigestCycle = -1; ///< newest stride's cycle
};

/** One emitted heartbeat: the sample plus host-side derivations. */
struct TelemetryRecord
{
    TelemetrySample sample;
    double wallSeconds = 0.0;
    double instCyclesPerSec = 0.0; ///< since the previous beat
    double cumCyclesPerSec = 0.0;  ///< since construction
    double etaSeconds = -1.0;      ///< -1 = no target / already past
    std::int64_t peakRssKb = 0;    ///< 0 where unreadable
};

/** Emits heartbeats; owned by the Network, driven from step(). */
class RunTelemetry
{
  public:
    explicit RunTelemetry(const TelemetryParams &params);

    const TelemetryParams &params() const { return params_; }

    /** True when the step ending at @p now should beat. */
    bool
    due(Cycle now) const
    {
        return now != 0 && now % params_.interval == 0;
    }

    /** Cycle count the ETA is computed against (0 = unknown; the
     *  runner sets warmup+measure, so the ETA covers the timed run
     *  up to the drain). */
    void setTargetCycles(Cycle target) { targetCycles_ = target; }
    Cycle targetCycles() const { return targetCycles_; }

    /** Called by the Network after every checkpoint write. */
    void
    noteCheckpoint(Cycle now)
    {
        lastCheckpointCycle_ = now;
        checkpointSeen_ = true;
    }

    /** Cycles since the last checkpoint (-1 = never checkpointed). */
    std::int64_t
    checkpointAge(Cycle now) const
    {
        if (!checkpointSeen_)
            return -1;
        return static_cast<std::int64_t>(now - lastCheckpointCycle_);
    }

    /** Emit one heartbeat: derive rates/ETA/RSS, append the JSONL
     *  record (when a path is configured) and the stderr line (when
     *  progress is on). */
    void beat(const TelemetrySample &sample);

    std::size_t beats() const { return beats_; }
    const TelemetryRecord &lastRecord() const { return last_; }

    /** Compact single-line rendering of a heartbeat — shared by the
     *  --progress stderr stream and nettest's per-phase summaries. */
    static std::string formatLine(const TelemetryRecord &rec,
                                  Cycle target_cycles);

    /** One JSONL object (no trailing newline) for a heartbeat. */
    static std::string formatJson(const TelemetryRecord &rec,
                                  Cycle target_cycles);

    /** Peak resident set size of this process in KiB (0 where the
     *  platform offers no getrusage). */
    static std::int64_t peakRssKb();

  private:
    TelemetryParams params_;
    std::chrono::steady_clock::time_point start_;
    Cycle targetCycles_ = 0;
    Cycle lastCheckpointCycle_ = 0;
    bool checkpointSeen_ = false;
    Cycle lastBeatCycle_ = 0;
    double lastBeatWall_ = 0.0;
    std::size_t beats_ = 0;
    TelemetryRecord last_;
    std::ofstream out_;
};

} // namespace nox

#endif // NOX_OBS_TELEMETRY_HPP
