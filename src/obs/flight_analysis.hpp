/**
 * @file
 * Offline analysis of flight-recorder JSONL dumps.
 *
 * The flight recorder (trace_recorder.hpp) dumps its ring as one JSON
 * header line followed by one JSON object per event. This module is
 * the inverse: it parses a dump back into events, reconstructs
 * per-packet timelines (create -> inject -> per-hop sends -> eject ->
 * done) by grouping flit-scope events through the invertible
 * `flitUid = (packet << 8) | seq` encoding, and ranks the slowest
 * packets with their critical (longest-stalled) hop and a dominant
 * stall cause inferred from co-located protection/recovery events.
 *
 * Every reconstructed latency is cross-checked against the latency the
 * simulator itself reported online (PacketDone's arg carries
 * `done_cycle - create_cycle`), making the analyzer self-validating:
 * a mismatch means the dump, the parser, or the simulator is wrong.
 *
 * Used by `trace_tool analyze` and the observability test suite.
 */

#ifndef NOX_OBS_FLIGHT_ANALYSIS_HPP
#define NOX_OBS_FLIGHT_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace nox {

/** One parsed flight-dump event line. */
struct FlightEvent
{
    Cycle cycle = 0;
    std::uint64_t id = 0;
    std::uint32_t arg = 0;
    NodeId node = kInvalidNode;
    int port = -1;
    TraceEventKind kind = TraceEventKind::PacketCreate;
    bool nic = false;
};

/** A parsed flight dump: the header plus every event, in ring order. */
struct FlightDump
{
    std::string reason;          ///< what triggered the dump
    Cycle dumpCycle = 0;         ///< cycle the dump was taken
    Cycle firstCycle = 0;        ///< oldest event's cycle
    Cycle lastCycle = 0;         ///< newest event's cycle
    std::vector<NodeId> implicated; ///< components named by the trigger
    std::vector<FlightEvent> events;
};

/**
 * Parse a flight-recorder JSONL dump. Returns false (with @p error
 * set) on unreadable files or malformed lines; unknown event kinds
 * are skipped (forward compatibility), a malformed line is fatal.
 */
bool loadFlightDump(const std::string &path, FlightDump &out,
                    std::string &error);

/** One observed step of a packet's head flit through the mesh. */
struct TimelineHop
{
    Cycle cycle = 0;
    TraceEventKind kind = TraceEventKind::FlitInject;
    NodeId node = kInvalidNode;
    bool nic = false;
    int port = -1;
};

/**
 * A packet's reconstructed lifecycle. Only packets whose PacketCreate
 * survived in the ring have src/dest/numFlits; only those whose
 * PacketDone survived have a reconstructed latency. The dump is a
 * bounded ring, so partial timelines are expected and reported as
 * such rather than dropped.
 */
struct PacketTimeline
{
    PacketId packet = kInvalidPacket;
    bool haveCreate = false;
    bool haveDone = false;
    Cycle createCycle = 0;
    Cycle doneCycle = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint32_t numFlits = 0;
    /** E2E timeout retransmissions folded into this timeline: every
     *  attempt travels as its own wire packet (attemptPacket), and
     *  the analyzer groups them back under the base id. */
    std::uint32_t e2eRetransmits = 0;
    /** Latency the simulator reported online (PacketDone arg + 1). */
    std::uint64_t reportedLatency = 0;
    /** Head-flit movement events (inject/send/decode/eject), sorted. */
    std::vector<TimelineHop> hops;

    /** End-to-end latency reconstructed from the dump alone (valid
     *  iff haveCreate && haveDone; same +1 convention as
     *  NetworkStats). */
    std::uint64_t latency() const
    {
        return doneCycle - createCycle + 1;
    }

    /** True when the offline reconstruction matches the online
     *  report (or the timeline is too partial to check). */
    bool consistent() const
    {
        return !(haveCreate && haveDone) ||
               latency() == reportedLatency;
    }
};

/** Group a dump's flit/packet events into per-packet timelines,
 *  sorted by packet id. */
std::vector<PacketTimeline> buildTimelines(const FlightDump &dump);

/** A slow packet with its critical hop and inferred dominant cause. */
struct SlowPacket
{
    PacketId packet = kInvalidPacket;
    std::uint64_t latency = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    /** The longest inter-event gap in the timeline. */
    Cycle stallStart = 0;
    Cycle stallEnd = 0;
    NodeId stallNode = kInvalidNode;
    bool stallNic = false;
    /** E2E timeout retransmissions of this packet (from timeline). */
    std::uint32_t e2eRetransmits = 0;
    /** Dominant stall cause: "e2e_timeout" (this packet was E2E-
     *  retransmitted inside the stall window — the loss was end-to-
     *  end, not repaired at link level), "source_queueing",
     *  "retransmission" (link-level nack/CRC recovery),
     *  "xor_recovery", "reroute" or "arbitration_or_credit". */
    std::string cause;
};

/**
 * The top @p k slowest *complete* timelines (create and done both in
 * the ring), each annotated with its critical hop and the dominant
 * cause inferred from dump events co-located with the stall window.
 */
std::vector<SlowPacket> slowestPackets(
    const FlightDump &dump,
    const std::vector<PacketTimeline> &timelines, std::size_t k);

} // namespace nox

#endif // NOX_OBS_FLIGHT_ANALYSIS_HPP
