#include "obs/trace_recorder.hpp"

#include <fstream>
#include <string_view>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::PacketCreate:
        return "packet_create";
      case TraceEventKind::FlitInject:
        return "flit_inject";
      case TraceEventKind::FlitSend:
        return "flit_send";
      case TraceEventKind::Arbitrate:
        return "arbitrate";
      case TraceEventKind::XorEncode:
        return "xor_encode";
      case TraceEventKind::XorDecode:
        return "xor_decode";
      case TraceEventKind::NoxAbort:
        return "nox_abort";
      case TraceEventKind::FlitEject:
        return "flit_eject";
      case TraceEventKind::PacketDone:
        return "packet_done";
      case TraceEventKind::FaultInject:
        return "fault_inject";
      case TraceEventKind::CrcReject:
        return "crc_reject";
      case TraceEventKind::LinkNack:
        return "link_nack";
      case TraceEventKind::Retransmit:
        return "retransmit";
      case TraceEventKind::CreditResync:
        return "credit_resync";
      case TraceEventKind::DecodeFault:
        return "decode_fault";
      case TraceEventKind::CorruptEscape:
        return "corrupt_escape";
      case TraceEventKind::HardFault:
        return "hard_fault";
      case TraceEventKind::TableRebuild:
        return "table_rebuild";
      case TraceEventKind::UnreachableReject:
        return "unreachable_reject";
      case TraceEventKind::SchedWake:
        return "sched_wake";
      case TraceEventKind::SchedRetire:
        return "sched_retire";
      case TraceEventKind::HealApply:
        return "heal_apply";
      case TraceEventKind::E2eRetransmit:
        return "e2e_retransmit";
      case TraceEventKind::E2eAck:
        return "e2e_ack";
      case TraceEventKind::DupSuppress:
        return "dup_suppress";
    }
    panic("unknown trace event kind");
}

bool
parseTraceEventKind(const char *name, TraceEventKind &out)
{
    constexpr auto kLast =
        static_cast<int>(TraceEventKind::DupSuppress);
    for (int k = 0; k <= kLast; ++k) {
        const auto kind = static_cast<TraceEventKind>(k);
        if (std::string_view(traceEventKindName(kind)) == name) {
            out = kind;
            return true;
        }
    }
    return false;
}

TraceRecorder::TraceRecorder(const TraceParams &params)
    : params_(params)
{
    NOX_ASSERT(params.capacity > 0, "trace ring needs capacity");
    ring_.resize(params.capacity);
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest event: at head_ once wrapped, at 0 before.
    const std::size_t start = total_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

namespace {

void
writeEventJson(std::ostream &os, const TraceEvent &e)
{
    os << "{\"c\":" << e.cycle << ",\"k\":\""
       << traceEventKindName(e.kind) << "\",\"n\":" << e.node
       << ",\"nic\":" << (e.nic ? 1 : 0)
       << ",\"p\":" << static_cast<int>(e.port) << ",\"id\":" << e.id
       << ",\"a\":" << e.arg << "}\n";
}

} // namespace

bool
TraceRecorder::triggerFlightDump(const std::string &reason,
                                 const std::vector<NodeId> &implicated)
{
    if (dumped_)
        return false; // keep the evidence of the *first* failure
    dumped_ = true;
    dumpReason_ = reason;
    if (params_.flightPath.empty())
        return false;

    std::ofstream out(params_.flightPath);
    if (!out) {
        warn("flight recorder: cannot write ", params_.flightPath);
        return false;
    }
    const std::vector<TraceEvent> events = snapshot();
    out << "{\"flight_recorder\":\"" << reason << "\",\"cycle\":" << now_
        << ",\"events\":" << events.size() << ",\"first_cycle\":"
        << (events.empty() ? now_ : events.front().cycle)
        << ",\"last_cycle\":"
        << (events.empty() ? now_ : events.back().cycle)
        << ",\"implicated\":[";
    for (std::size_t i = 0; i < implicated.size(); ++i)
        out << (i ? "," : "") << implicated[i];
    out << "]}\n";
    for (const TraceEvent &e : events)
        writeEventJson(out, e);
    inform("flight recorder: ", reason, " -> wrote ", events.size(),
           " event(s) to ", params_.flightPath);
    return true;
}

void
TraceRecorder::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("TRCR"));
    w.u64(ring_.size());
    w.u64(total_);
    w.u64(now_);
    w.boolean(dumped_);
    w.str(dumpReason_);
    // Held events only, oldest first — empty slots of a not-yet-full
    // ring are default-constructed on restore.
    for (const TraceEvent &e : snapshot()) {
        w.u64(e.cycle);
        w.u64(e.id);
        w.u32(e.arg);
        w.i32(e.node);
        w.i32(e.port);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.boolean(e.nic);
    }
}

void
TraceRecorder::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("TRCR"));
    const std::uint64_t cap = r.u64();
    if (cap != ring_.size())
        r.fail("trace ring capacity mismatch (wrong geometry)");
    total_ = r.u64();
    now_ = r.u64();
    dumped_ = r.boolean();
    dumpReason_ = r.str();
    ring_.assign(ring_.size(), TraceEvent{});
    // head_ always equals total_ % capacity (both start at zero and
    // advance in lockstep), so slot positions reconstruct exactly.
    head_ = static_cast<std::size_t>(total_ % ring_.size());
    const std::size_t held = size();
    const std::size_t start = total_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < held; ++i) {
        TraceEvent &e = ring_[(start + i) % ring_.size()];
        e.cycle = r.u64();
        e.id = r.u64();
        e.arg = r.u32();
        e.node = r.i32();
        e.port = static_cast<std::int8_t>(r.i32());
        e.kind = static_cast<TraceEventKind>(r.u8());
        e.nic = r.boolean();
    }
}

} // namespace nox
