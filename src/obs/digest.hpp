/**
 * @file
 * Deterministic state-digest ledger: cycle-resolution divergence
 * observability for cross-run equivalence checking.
 *
 * Every correctness pillar of this reproduction — cross-kernel
 * bit-identity, observer-effect freedom, snapshot restore, chaos-churn
 * exactly-once — compares *trajectories*, but until this ledger only
 * the end-of-run NetworkStats were checked, so a divergence 10M cycles
 * before the finish line surfaced as an inscrutable end-state diff.
 * The DigestLedger folds a canonical per-component digest (per-router,
 * per-NIC, transport, fault injector, network-global counters) every
 * `digest_interval` cycles into an append-only ledger: an in-memory
 * stride vector plus an optional JSONL stream (`digest_file=`).
 *
 * The canonical bytes are produced by the *same* serialize() visitors
 * that write snapshots — fed into a scratch Writer in Digest scope
 * (see snap::Scope) and hashed, instead of being kept. The byte layout
 * therefore stays in lockstep with the snapshot format by
 * construction; Digest scope only omits the EnergyEvents counters,
 * which the activity kernel legitimately clock-gates for retired
 * components, and the Network-level digest visitor additionally skips
 * kernel-bookkeeping (active sets) and observer-owned state
 * (metrics window baselines, the age-dump latch).
 *
 * Two ledgers from equivalent runs — kernel A vs kernel B, obs-on vs
 * obs-off, resumed vs uninterrupted — must be stride-for-stride
 * identical; compareLedgers() reports the first stride where they are
 * not, and exactly which components differ. `trace_tool diff` and
 * `trace_tool bisect` build on that to narrow a divergence to the
 * exact cycle and router.
 *
 * Like every observer, the ledger is nullptr-when-off on the Network
 * and strictly read-only with respect to simulation state. It is
 * per-run output, not simulation state: neither serialized nor part
 * of the construction fingerprint, so a bisection re-run may restore
 * a digest-off checkpoint into a digest-on network.
 */

#ifndef NOX_OBS_DIGEST_HPP
#define NOX_OBS_DIGEST_HPP

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "noc/types.hpp"
#include "snapshot/io.hpp"

namespace nox {

/** Digest-ledger configuration (see obsParamsFromConfig for keys). */
struct DigestParams
{
    bool enabled = false;
    Cycle interval = 1000; ///< cycles between strides
    std::string jsonlPath; ///< JSONL ledger path ("" = in-memory only)
};

/** One component's state digest: 64-bit FNV-1a over its canonical
 *  serialize() bytes, avalanched so single-bit state differences do
 *  not collide in the low bits. */
using DigestHash = std::uint64_t;

/** Streaming FNV-1a 64 with a splitmix64-style finalizer. */
DigestHash digestBytes(const std::uint8_t *data, std::size_t len);

/** Order-sensitive fold of one word into a running digest. */
DigestHash digestMix(DigestHash h, std::uint64_t v);

/**
 * The per-component digests captured at one ledger stride. Components
 * absent from the run (no fault injector, no transport) digest to 0 —
 * a value digestBytes cannot produce, so absence never collides with
 * presence.
 */
struct DigestStride
{
    Cycle cycle = 0;
    DigestHash global = 0;    ///< network-global counters + maps
    DigestHash sources = 0;   ///< all traffic sources, folded
    DigestHash faults = 0;    ///< fault injector (0 = absent)
    DigestHash transport = 0; ///< e2e transport (0 = absent)
    std::vector<DigestHash> routers;
    std::vector<DigestHash> nics;

    /** One hash over the whole stride (order-sensitive). */
    DigestHash fold() const;

    bool
    operator==(const DigestStride &o) const
    {
        return cycle == o.cycle && global == o.global &&
               sources == o.sources && faults == o.faults &&
               transport == o.transport && routers == o.routers &&
               nics == o.nics;
    }
    bool operator!=(const DigestStride &o) const { return !(*this == o); }
};

/** Names of the components that differ between two strides, e.g.
 *  "global", "router:12", "nic:3" (sorted by component order). */
std::vector<std::string> divergentComponents(const DigestStride &a,
                                             const DigestStride &b);

/** Collects strides; owned by the Network, driven from step(). */
class DigestLedger
{
  public:
    explicit DigestLedger(const DigestParams &params);

    const DigestParams &params() const { return params_; }

    /** True when the step ending at @p now should capture a stride. */
    bool
    due(Cycle now) const
    {
        return now != 0 && now % params_.interval == 0;
    }

    /** Write the JSONL header line (fingerprint + interval). Called
     *  once by the Network at construction; a no-op without a file. */
    void writeHeader(const std::string &fingerprint);

    /** Append one stride (streams its JSONL line when configured). */
    void record(DigestStride stride);

    std::size_t strideCount() const { return strides_.size(); }

    /** Cycle of the newest stride (-1 before the first). */
    std::int64_t
    lastDigestCycle() const
    {
        return strides_.empty()
                   ? -1
                   : static_cast<std::int64_t>(strides_.back().cycle);
    }

    const std::vector<DigestStride> &strides() const { return strides_; }

    /** Scratch byte sink reused across components (capacity persists
     *  between strides, so steady-state capture never allocates). */
    snap::Writer &scratch() { return scratch_; }

  private:
    DigestParams params_;
    std::vector<DigestStride> strides_;
    snap::Writer scratch_;
    std::ofstream out_;
};

/** A ledger parsed back from its JSONL file. */
struct LedgerFile
{
    std::string fingerprint; ///< from the header ("" = no header)
    Cycle interval = 0;      ///< 0 = no header line seen
    std::vector<DigestStride> strides;
};

/** Parse a JSONL ledger. @return false (with @p err filled) on I/O or
 *  format errors; an empty-but-valid ledger parses successfully. */
bool loadDigestLedger(const std::string &path, LedgerFile *out,
                      std::string *err);

/** Outcome of comparing two ledgers stride-by-stride. */
struct DigestDivergence
{
    bool comparable = true; ///< false: intervals/cycles misaligned
    std::string error;      ///< why not comparable

    bool diverged = false;
    Cycle cycle = 0; ///< first divergent stride's cycle
    std::int64_t lastAgreeCycle = -1; ///< -1 = none agreed
    std::vector<std::string> components; ///< differing at first stride
    std::size_t stridesCompared = 0;
};

/**
 * First divergent stride between two ledgers. Strides are matched by
 * position and must carry equal cycles (else not comparable). Extra
 * trailing strides on the longer ledger are ignored: a shorter run is
 * a prefix, not a divergence.
 */
DigestDivergence compareLedgers(const LedgerFile &a,
                                const LedgerFile &b);

/** Convenience overload over in-memory stride vectors. */
DigestDivergence compareStrides(const std::vector<DigestStride> &a,
                                const std::vector<DigestStride> &b);

} // namespace nox

#endif // NOX_OBS_DIGEST_HPP
