#include "obs/provenance.hpp"

#include <algorithm>
#include <fstream>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

const char *
latencyComponentName(LatencyComponent c)
{
    switch (c) {
    case LatencyComponent::SourceQueue: return "source_queue";
    case LatencyComponent::RouterPipeline: return "router_pipeline";
    case LatencyComponent::LinkSerialization:
        return "link_serialization";
    case LatencyComponent::CreditStall: return "credit_stall";
    case LatencyComponent::ArbLoss: return "arb_loss";
    case LatencyComponent::XorRecovery: return "xor_recovery";
    case LatencyComponent::Retransmit: return "retransmit";
    case LatencyComponent::Reroute: return "reroute";
    }
    return "?";
}

void
LatencyProvenance::onPacketCreate(const std::vector<FlitDesc> &flits,
                                  Cycle now)
{
    for (const FlitDesc &d : flits) {
        FlitTrack t;
        t.segStart = now;
        t.createCycle = now;
        t.cls = d.cls;
        t.packet = d.packet;
        t.src = d.src;
        t.dest = d.dest;
        t.at = d.src;
        t.nic = true;
        tracks_.emplace(d.uid, t);
    }
}

void
LatencyProvenance::onRetransmit(const std::vector<FlitDesc> &flits,
                                Cycle now)
{
    for (const FlitDesc &d : flits) {
        FlitTrack t;
        t.segStart = now;
        t.createCycle = d.createCycle; // original create: logical
                                       // latency, not attempt latency
        t.cls = d.cls;
        t.packet = d.packet;
        t.src = d.src;
        t.dest = d.dest;
        t.at = d.src;
        t.nic = true;
        // Cycles burned by the lost earlier attempts (original create
        // through this resend) are E2E retransmission overhead.
        t.comp[static_cast<std::size_t>(
            LatencyComponent::Retransmit)] += now - d.createCycle;
        tracks_.emplace(d.uid, t);
    }
}

void
LatencyProvenance::onInject(std::uint64_t uid, NodeId router,
                            Cycle now)
{
    auto it = tracks_.find(uid);
    if (it == tracks_.end())
        return;
    FlitTrack &t = it->second;
    t.comp[static_cast<std::size_t>(LatencyComponent::SourceQueue)] +=
        now - t.segStart;
    t.segStart = now;
    t.segStalls = 0;
    t.at = router;
    t.nic = false;
    t.injected = true;
}

void
LatencyProvenance::closeSegment(FlitTrack &t, Cycle now,
                                std::uint64_t pipeline)
{
    // Segment span: staged at segStart (visible downstream from
    // segStart + 1), accepted onward at `now`. Explicit stalls can
    // only have landed on cycles (segStart, now), so the residual is
    // non-negative on a correct build.
    const std::uint64_t span = now - t.segStart;
    std::uint64_t residual = 0;
    if (span >= 1 + static_cast<std::uint64_t>(t.segStalls)) {
        residual = span - 1 - t.segStalls;
    } else {
        // Over-charged segment: a charge site billed a cycle the flit
        // actually moved. Clamp so the export stays monotone; the
        // delivery-time conservation check will flag the flit.
        ++conservationViolations_;
    }
    t.comp[static_cast<std::size_t>(
        LatencyComponent::RouterPipeline)] += pipeline;
    t.comp[static_cast<std::size_t>(
        LatencyComponent::LinkSerialization)] += residual;
}

void
LatencyProvenance::onHopSend(std::uint64_t uid, Cycle now,
                             NodeId target, bool target_is_nic)
{
    auto it = tracks_.find(uid);
    if (it == tracks_.end())
        return;
    FlitTrack &t = it->second;
    closeSegment(t, now, 1);
    t.segStart = now;
    t.segStalls = 0;
    t.at = target;
    t.nic = target_is_nic;
}

void
LatencyProvenance::onStall(std::uint64_t uid, LatencyComponent c,
                           NodeId node, bool nic, Cycle now)
{
    auto it = tracks_.find(uid);
    if (it == tracks_.end())
        return;
    FlitTrack &t = it->second;
    // Location guard: only the component currently holding the flit
    // may charge it (a retry buffer's stale copy, or an XOR chain
    // constituent that has not arrived here yet, must not).
    if (!t.injected || t.at != node || t.nic != nic)
        return;
    // Per-cycle guard: at most one stall cycle per flit per cycle.
    if (t.lastCharge == now)
        return;
    t.lastCharge = now;
    ++t.segStalls;
    ++t.comp[static_cast<std::size_t>(c)];
}

void
LatencyProvenance::onDelivered(const FlitDesc &flit, Cycle now,
                               bool completes_packet)
{
    auto it = tracks_.find(flit.uid);
    if (it == tracks_.end())
        return;
    FlitTrack &t = it->second;
    // Ejection segment: the final link traversal plus the sink's
    // decode/deliver stage — two productive pipeline cycles, matching
    // the simulator's `latency = deliver - create + 1` convention.
    closeSegment(t, now, 2);

    const std::uint64_t latency = now - t.createCycle + 1;
    std::uint64_t sum = 0;
    for (std::uint64_t v : t.comp)
        sum += v;
    if (sum != latency)
        ++conservationViolations_;

    // The completing flit's span covers createCycle..now, i.e. the
    // packet's measured latency exactly; aggregate that one span per
    // packet, window-gated like NetworkStats.
    if (completes_packet && t.createCycle >= measureStart_ &&
        t.createCycle < measureEnd_) {
        total_.add(latency, t.comp);
        byClass_[static_cast<std::size_t>(t.cls)].add(latency, t.comp);
        byFlow_[flowKey(t.src, t.dest)].add(latency, t.comp);
    }
    tracks_.erase(it);
}

void
LatencyProvenance::forgetFlits(const std::vector<std::uint64_t> &uids)
{
    for (std::uint64_t uid : uids)
        tracks_.erase(uid);
}

namespace {

void
writeBreakdownFields(std::ostream &os, const LatencyBreakdown &b)
{
    os << "\"packets\":" << b.packets
       << ",\"total_cycles\":" << b.totalCycles;
    for (std::size_t i = 0; i < kNumLatencyComponents; ++i) {
        os << ",\"" << latencyComponentName(
                           static_cast<LatencyComponent>(i))
           << "\":" << b.comp[i];
    }
}

} // namespace

bool
LatencyProvenance::writeJsonl(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("provenance: cannot write ", path);
        return false;
    }
    os << "{\"scope\":\"total\",";
    writeBreakdownFields(os, total_);
    os << "}\n";
    static const char *kClassNames[] = {"synthetic", "request",
                                        "reply"};
    for (std::size_t i = 0; i < byClass_.size(); ++i) {
        if (byClass_[i].packets == 0)
            continue;
        os << "{\"scope\":\"class\",\"class\":\"" << kClassNames[i]
           << "\",";
        writeBreakdownFields(os, byClass_[i]);
        os << "}\n";
    }
    // Deterministic flow order (unordered_map iteration is not).
    std::vector<std::uint64_t> keys;
    keys.reserve(byFlow_.size());
    for (const auto &[key, b] : byFlow_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
        const LatencyBreakdown &b = byFlow_.at(key);
        os << "{\"scope\":\"flow\",\"src\":" << (key >> 32)
           << ",\"dest\":" << (key & 0xFFFFFFFFu) << ",";
        writeBreakdownFields(os, b);
        os << "}\n";
    }
    return os.good();
}

namespace {

void
writeBreakdown(snap::Writer &w, const LatencyBreakdown &b)
{
    w.u64(b.packets);
    w.u64(b.totalCycles);
    for (std::uint64_t c : b.comp)
        w.u64(c);
}

void
readBreakdown(snap::Reader &r, LatencyBreakdown &b)
{
    b.packets = r.u64();
    b.totalCycles = r.u64();
    for (std::uint64_t &c : b.comp)
        c = r.u64();
}

/** Sorted keys of an unordered map: deterministic stream layout. */
template <typename Map>
std::vector<std::uint64_t>
sortedKeys(const Map &m)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(m.size());
    for (const auto &[k, v] : m)
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
LatencyProvenance::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("PROV"));
    w.u64(measureStart_);
    w.u64(measureEnd_);
    w.u64(conservationViolations_);
    writeBreakdown(w, total_);
    for (const LatencyBreakdown &b : byClass_)
        writeBreakdown(w, b);
    w.u64(byFlow_.size());
    for (std::uint64_t key : sortedKeys(byFlow_)) {
        w.u64(key);
        writeBreakdown(w, byFlow_.at(key));
    }
    w.u64(tracks_.size());
    for (std::uint64_t uid : sortedKeys(tracks_)) {
        const FlitTrack &t = tracks_.at(uid);
        w.u64(uid);
        w.u64(t.segStart);
        w.u64(t.lastCharge);
        w.u32(t.segStalls);
        w.i32(t.at);
        w.boolean(t.nic);
        w.boolean(t.injected);
        w.u64(t.createCycle);
        w.u8(static_cast<std::uint8_t>(t.cls));
        w.u64(t.packet);
        w.i32(t.src);
        w.i32(t.dest);
        for (std::uint64_t c : t.comp)
            w.u64(c);
    }
}

void
LatencyProvenance::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("PROV"));
    measureStart_ = r.u64();
    measureEnd_ = r.u64();
    conservationViolations_ = r.u64();
    readBreakdown(r, total_);
    for (LatencyBreakdown &b : byClass_)
        readBreakdown(r, b);
    byFlow_.clear();
    const std::uint64_t nflow = r.u64();
    for (std::uint64_t i = 0; i < nflow; ++i) {
        const std::uint64_t key = r.u64();
        readBreakdown(r, byFlow_[key]);
    }
    tracks_.clear();
    const std::uint64_t ntrack = r.u64();
    for (std::uint64_t i = 0; i < ntrack; ++i) {
        const std::uint64_t uid = r.u64();
        FlitTrack &t = tracks_[uid];
        t.segStart = r.u64();
        t.lastCharge = r.u64();
        t.segStalls = r.u32();
        t.at = r.i32();
        t.nic = r.boolean();
        t.injected = r.boolean();
        t.createCycle = r.u64();
        t.cls = static_cast<TrafficClass>(r.u8());
        t.packet = r.u64();
        t.src = r.i32();
        t.dest = r.i32();
        for (std::uint64_t &c : t.comp)
            c = r.u64();
    }
}

} // namespace nox
