#include "obs/profiler.hpp"

#include <algorithm>
#include <fstream>

namespace nox {

const char *
simPhaseName(SimPhase phase)
{
    switch (phase) {
      case SimPhase::TrafficInject:
        return "traffic_inject";
      case SimPhase::LinkRetry:
        return "link_retry";
      case SimPhase::RouterEvaluate:
        return "router_evaluate";
      case SimPhase::NicEject:
        return "nic_eject";
      case SimPhase::Scheduler:
        return "scheduler";
      case SimPhase::ObsFlush:
        return "obs_flush";
      case SimPhase::Checkpoint:
        return "checkpoint";
    }
    panic("unknown sim phase ", static_cast<int>(phase));
}

double
loadImbalance(const std::vector<std::uint64_t> &work,
              const std::vector<int> &shardOf, int numShards)
{
    NOX_ASSERT(numShards > 0, "partition needs at least one shard");
    NOX_ASSERT(work.size() == shardOf.size(),
               "work/partition size mismatch: ", work.size(), " vs ",
               shardOf.size());
    std::vector<std::uint64_t> shard(
        static_cast<std::size_t>(numShards), 0);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
        const int s = shardOf[i];
        NOX_ASSERT(s >= 0 && s < numShards, "router ", i,
                   " assigned to shard ", s, " of ", numShards);
        shard[static_cast<std::size_t>(s)] += work[i];
        total += work[i];
    }
    if (total == 0)
        return 1.0; // no work is trivially balanced
    const std::uint64_t worst =
        *std::max_element(shard.begin(), shard.end());
    const double mean =
        static_cast<double>(total) / static_cast<double>(numShards);
    return static_cast<double>(worst) / mean;
}

std::vector<int>
rowStripePartition(int width, int height, int numShards)
{
    NOX_ASSERT(width > 0 && height > 0, "degenerate mesh");
    NOX_ASSERT(numShards > 0, "partition needs at least one shard");
    std::vector<int> shardOf(
        static_cast<std::size_t>(width) *
        static_cast<std::size_t>(height));
    for (int r = 0; r < width * height; ++r) {
        const int row = r / width;
        shardOf[static_cast<std::size_t>(r)] =
            static_cast<int>((static_cast<std::int64_t>(row) *
                              numShards) /
                             height);
    }
    return shardOf;
}

PhaseProfiler::PhaseProfiler(const ProfilerParams &params,
                             int num_routers)
    : params_(params)
{
    NOX_ASSERT(num_routers > 0, "profiler needs at least one router");
    evals_.assign(static_cast<std::size_t>(num_routers), 0);
    flitsMoved_.assign(static_cast<std::size_t>(num_routers), 0);
    arbRounds_.assign(static_cast<std::size_t>(num_routers), 0);
}

std::uint64_t
PhaseProfiler::phaseNsSum() const
{
    std::uint64_t sum = 0;
    for (const PhaseTotals &t : phases_)
        sum += t.ns;
    return sum;
}

double
PhaseProfiler::coverage() const
{
    if (totalNs_ == 0)
        return 1.0;
    return static_cast<double>(phaseNsSum()) /
           static_cast<double>(totalNs_);
}

void
PhaseProfiler::recordRouterWork(NodeId router,
                                std::uint64_t flits_moved,
                                std::uint64_t arb_rounds)
{
    flitsMoved_[static_cast<std::size_t>(router)] = flits_moved;
    arbRounds_[static_cast<std::size_t>(router)] = arb_rounds;
}

RouterWork
PhaseProfiler::routerWork(NodeId router) const
{
    const auto i = static_cast<std::size_t>(router);
    return {evals_[i], flitsMoved_[i], arbRounds_[i]};
}

bool
PhaseProfiler::writeJsonl(const std::string &path,
                          const ProfileMeta &meta) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write profile JSONL: ", path);
        return false;
    }
    out << "{\"type\": \"profile_header\", \"steps\": " << steps_
        << ", \"total_ns\": " << totalNs_
        << ", \"phase_ns_sum\": " << phaseNsSum()
        << ", \"coverage\": " << coverage()
        << ", \"width\": " << meta.width
        << ", \"height\": " << meta.height << ", \"arch\": \""
        << meta.arch << "\", \"sched\": \"" << meta.sched
        << "\", \"routers\": " << evals_.size() << "}\n";
    for (std::size_t i = 0; i < kNumSimPhases; ++i) {
        const PhaseTotals &t = phases_[i];
        out << "{\"type\": \"phase\", \"name\": \""
            << simPhaseName(static_cast<SimPhase>(i))
            << "\", \"ns\": " << t.ns << ", \"enters\": " << t.enters
            << "}\n";
    }
    for (std::size_t r = 0; r < evals_.size(); ++r) {
        out << "{\"type\": \"router\", \"id\": " << r
            << ", \"evals\": " << evals_[r]
            << ", \"flits\": " << flitsMoved_[r]
            << ", \"arb\": " << arbRounds_[r] << "}\n";
    }
    // Precomputed imbalance for the default 4-way row-stripe
    // partition (trace_tool profile recomputes for any shards=).
    if (meta.width > 0 && meta.height > 0 &&
        static_cast<std::size_t>(meta.width) *
                static_cast<std::size_t>(meta.height) ==
            evals_.size()) {
        const int shards = std::min(4, meta.height);
        const std::vector<int> part =
            rowStripePartition(meta.width, meta.height, shards);
        out << "{\"type\": \"imbalance\", \"by\": \"evals\", "
            << "\"shards\": " << shards << ", \"index\": "
            << loadImbalance(evals_, part, shards) << "}\n";
        out << "{\"type\": \"imbalance\", \"by\": \"flits\", "
            << "\"shards\": " << shards << ", \"index\": "
            << loadImbalance(flitsMoved_, part, shards) << "}\n";
    }
    return out.good();
}

} // namespace nox
