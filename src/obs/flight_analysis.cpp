#include "obs/flight_analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hpp"
#include "noc/flit.hpp"

namespace nox {

namespace {

/** Find `"key":<integer>` in a single-line JSON object. */
bool
findInt(const std::string &line, const char *key, long long &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + pat.size();
    char *end = nullptr;
    out = std::strtoll(start, &end, 10);
    return end != start;
}

/** Find `"key":"<string>"` in a single-line JSON object. */
bool
findString(const std::string &line, const char *key, std::string &out)
{
    const std::string pat = std::string("\"") + key + "\":\"";
    const std::size_t pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + pat.size();
    const std::size_t close = line.find('"', start);
    if (close == std::string::npos)
        return false;
    out = line.substr(start, close - start);
    return true;
}

} // namespace

bool
loadFlightDump(const std::string &path, FlightDump &out,
               std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }

    std::string line;
    if (!std::getline(in, line) ||
        !findString(line, "flight_recorder", out.reason)) {
        error = path + ": missing flight_recorder header";
        return false;
    }
    long long v = 0;
    if (findInt(line, "cycle", v))
        out.dumpCycle = static_cast<Cycle>(v);
    if (findInt(line, "first_cycle", v))
        out.firstCycle = static_cast<Cycle>(v);
    if (findInt(line, "last_cycle", v))
        out.lastCycle = static_cast<Cycle>(v);
    const std::size_t imp = line.find("\"implicated\":[");
    if (imp != std::string::npos) {
        const char *p = line.c_str() + imp + 14;
        while (*p != ']' && *p != '\0') {
            char *end = nullptr;
            const long long node = std::strtoll(p, &end, 10);
            if (end == p)
                break;
            out.implicated.push_back(static_cast<NodeId>(node));
            p = (*end == ',') ? end + 1 : end;
        }
    }

    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        FlightEvent e;
        std::string kind;
        long long c = 0, n = 0, nic = 0, p = 0, id = 0, a = 0;
        if (!findInt(line, "c", c) || !findString(line, "k", kind) ||
            !findInt(line, "n", n) || !findInt(line, "nic", nic) ||
            !findInt(line, "p", p) || !findInt(line, "id", id) ||
            !findInt(line, "a", a)) {
            std::ostringstream os;
            os << path << ":" << lineno << ": malformed event line";
            error = os.str();
            return false;
        }
        if (!parseTraceEventKind(kind.c_str(), e.kind))
            continue; // unknown kind: skip, don't fail
        e.cycle = static_cast<Cycle>(c);
        e.node = static_cast<NodeId>(n);
        e.nic = nic != 0;
        e.port = static_cast<int>(p);
        e.id = static_cast<std::uint64_t>(id);
        e.arg = static_cast<std::uint32_t>(a);
        out.events.push_back(e);
    }
    return true;
}

std::vector<PacketTimeline>
buildTimelines(const FlightDump &dump)
{
    // std::map: timelines come out sorted by packet id.
    std::map<PacketId, PacketTimeline> by_packet;
    auto timeline = [&](PacketId packet) -> PacketTimeline & {
        PacketTimeline &t = by_packet[packet];
        t.packet = packet;
        return t;
    };

    for (const FlightEvent &e : dump.events) {
        switch (e.kind) {
          case TraceEventKind::PacketCreate: {
            PacketTimeline &t = timeline(e.id);
            t.haveCreate = true;
            t.createCycle = e.cycle;
            t.src = e.node;
            t.dest = static_cast<NodeId>(e.arg >> 16);
            t.numFlits = e.arg & 0xffffu;
            break;
          }
          case TraceEventKind::PacketDone: {
            PacketTimeline &t = timeline(e.id);
            t.haveDone = true;
            t.doneCycle = e.cycle;
            t.reportedLatency =
                static_cast<std::uint64_t>(e.arg) + 1;
            break;
          }
          case TraceEventKind::FlitInject:
          case TraceEventKind::FlitSend:
          case TraceEventKind::XorDecode:
          case TraceEventKind::FlitEject: {
            // An encoded link value belongs to no single packet; the
            // recorder writes id 0 for those (real packet ids start
            // at 1). Track head flits only: the +1 latency convention
            // keys off the head's journey and tail flits ride the
            // same wormhole path. Every E2E retransmission attempt
            // travels as its own wire packet id; fold attempts back
            // under the base id so a retransmitted packet has ONE
            // timeline covering its whole multi-attempt journey.
            if (e.id == 0 || flitSeq(e.id) != 0)
                break;
            PacketTimeline &t =
                timeline(basePacket(flitPacket(e.id)));
            t.hops.push_back(
                {e.cycle, e.kind, e.node, e.nic, e.port});
            break;
          }
          case TraceEventKind::E2eRetransmit: {
            // Packet-scope event, id is already the base packet.
            ++timeline(e.id).e2eRetransmits;
            break;
          }
          default:
            break;
        }
    }

    std::vector<PacketTimeline> out;
    out.reserve(by_packet.size());
    for (auto &[packet, t] : by_packet) {
        std::stable_sort(t.hops.begin(), t.hops.end(),
                         [](const TimelineHop &a, const TimelineHop &b) {
                             return a.cycle < b.cycle;
                         });
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<SlowPacket>
slowestPackets(const FlightDump &dump,
               const std::vector<PacketTimeline> &timelines,
               std::size_t k)
{
    std::vector<const PacketTimeline *> complete;
    for (const PacketTimeline &t : timelines) {
        if (t.haveCreate && t.haveDone)
            complete.push_back(&t);
    }
    std::sort(complete.begin(), complete.end(),
              [](const PacketTimeline *a, const PacketTimeline *b) {
                  if (a->latency() != b->latency())
                      return a->latency() > b->latency();
                  return a->packet < b->packet;
              });
    if (complete.size() > k)
        complete.resize(k);

    std::vector<SlowPacket> out;
    out.reserve(complete.size());
    for (const PacketTimeline *t : complete) {
        SlowPacket s;
        s.packet = t->packet;
        s.latency = t->latency();
        s.src = t->src;
        s.dest = t->dest;
        s.e2eRetransmits = t->e2eRetransmits;

        // Critical hop: the longest gap between consecutive observed
        // points of the head flit's journey, charged to the component
        // the flit was waiting at (the gap's starting point). Hops
        // past doneCycle are a suppressed duplicate attempt arriving
        // after first delivery — not part of the latency story.
        std::vector<TimelineHop> points;
        points.push_back({t->createCycle, TraceEventKind::PacketCreate,
                          t->src, true, -1});
        for (const TimelineHop &h : t->hops) {
            if (h.cycle <= t->doneCycle)
                points.push_back(h);
        }
        points.push_back({t->doneCycle, TraceEventKind::PacketDone,
                          t->dest, true, -1});
        std::size_t worst = 0;
        Cycle worst_gap = 0;
        for (std::size_t i = 0; i + 1 < points.size(); ++i) {
            const Cycle gap =
                points[i + 1].cycle - points[i].cycle;
            if (gap > worst_gap) {
                worst_gap = gap;
                worst = i;
            }
        }
        s.stallStart = points[worst].cycle;
        s.stallEnd = points[worst + 1].cycle;
        s.stallNode = points[worst].node;
        s.stallNic = points[worst].nic;

        // This packet's own E2E retransmission inside the stall
        // window is the strongest possible signal: the gap IS the
        // timeout-and-resend round trip, so it outranks every
        // co-located vote below. A link-level nack never produces an
        // E2eRetransmit — that loss is repaired hop-local and still
        // classifies as "retransmission".
        bool e2e_in_window = false;
        for (const FlightEvent &e : dump.events) {
            if (e.kind == TraceEventKind::E2eRetransmit &&
                e.id == s.packet && e.cycle >= s.stallStart &&
                e.cycle <= s.stallEnd) {
                e2e_in_window = true;
                break;
            }
        }

        // Dominant cause: protection/recovery events co-located with
        // the stall window outvote each other; a stall that starts
        // before the head ever injected is source queueing; anything
        // unexplained is ordinary arbitration/credit back-pressure.
        if (e2e_in_window) {
            s.cause = "e2e_timeout";
        } else if (points[worst].kind == TraceEventKind::PacketCreate) {
            s.cause = "source_queueing";
        } else {
            std::uint64_t retrans = 0, xor_rec = 0, reroute = 0;
            for (const FlightEvent &e : dump.events) {
                if (e.cycle < s.stallStart || e.cycle > s.stallEnd)
                    continue;
                switch (e.kind) {
                  case TraceEventKind::CrcReject:
                  case TraceEventKind::LinkNack:
                  case TraceEventKind::Retransmit:
                  case TraceEventKind::FaultInject:
                    if (e.node == s.stallNode)
                        ++retrans;
                    break;
                  case TraceEventKind::XorEncode:
                  case TraceEventKind::NoxAbort:
                  case TraceEventKind::DecodeFault:
                    if (e.node == s.stallNode)
                        ++xor_rec;
                    break;
                  case TraceEventKind::HardFault:
                  case TraceEventKind::TableRebuild:
                    ++reroute; // global: rebuilds stall everyone
                    break;
                  default:
                    break;
                }
            }
            if (reroute > 0 && reroute >= retrans &&
                reroute >= xor_rec)
                s.cause = "reroute";
            else if (retrans > 0 && retrans >= xor_rec)
                s.cause = "retransmission";
            else if (xor_rec > 0)
                s.cause = "xor_recovery";
            else
                s.cause = "arbitration_or_credit";
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace nox
