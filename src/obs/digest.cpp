/** @file Digest-ledger implementation (see digest.hpp). */

#include "obs/digest.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"

namespace nox {
namespace {

constexpr DigestHash kFnvOffset = 0xcbf29ce484222325ULL;
constexpr DigestHash kFnvPrime = 0x100000001b3ULL;

/** splitmix64-style avalanche: spreads single-bit differences over
 *  the whole word so truncated comparisons stay discriminating. */
DigestHash
avalanche(DigestHash h)
{
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

std::string
hex16(DigestHash h)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Position just past `"key": ` in a single-line JSON object, or
 *  npos when the key is absent. */
std::size_t
fieldPos(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return std::string::npos;
    std::size_t p = at + needle.size();
    while (p < line.size() && line[p] == ' ')
        ++p;
    return p;
}

bool
findU64(const std::string &line, const char *key, std::uint64_t *out)
{
    const std::size_t p = fieldPos(line, key);
    if (p == std::string::npos || p >= line.size())
        return false;
    *out = std::strtoull(line.c_str() + p, nullptr, 10);
    return true;
}

bool
findString(const std::string &line, const char *key, std::string *out)
{
    std::size_t p = fieldPos(line, key);
    if (p == std::string::npos || p >= line.size() || line[p] != '"')
        return false;
    ++p;
    std::string s;
    while (p < line.size() && line[p] != '"') {
        if (line[p] == '\\' && p + 1 < line.size())
            ++p;
        s.push_back(line[p]);
        ++p;
    }
    if (p >= line.size())
        return false; // unterminated string
    *out = std::move(s);
    return true;
}

bool
parseHex(const std::string &s, DigestHash *out)
{
    if (s.empty() || s.size() > 16)
        return false;
    char *end = nullptr;
    *out = std::strtoull(s.c_str(), &end, 16);
    return end == s.c_str() + s.size();
}

bool
findHex(const std::string &line, const char *key, DigestHash *out)
{
    std::string s;
    return findString(line, key, &s) && parseHex(s, out);
}

bool
findHexArray(const std::string &line, const char *key,
             std::vector<DigestHash> *out)
{
    std::size_t p = fieldPos(line, key);
    if (p == std::string::npos || p >= line.size() || line[p] != '[')
        return false;
    ++p;
    out->clear();
    while (p < line.size() && line[p] != ']') {
        if (line[p] == '"') {
            std::size_t close = line.find('"', p + 1);
            if (close == std::string::npos)
                return false;
            DigestHash h = 0;
            if (!parseHex(line.substr(p + 1, close - p - 1), &h))
                return false;
            out->push_back(h);
            p = close + 1;
        } else {
            ++p;
        }
    }
    return p < line.size();
}

} // namespace

DigestHash
digestBytes(const std::uint8_t *data, std::size_t len)
{
    DigestHash h = kFnvOffset;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    h = avalanche(h);
    // 0 is reserved for "component absent"; remap the (astronomically
    // unlikely) real hash of 0 so absence can never alias presence.
    return h != 0 ? h : 1;
}

DigestHash
digestMix(DigestHash h, std::uint64_t v)
{
    return (h ^ avalanche(v)) * kFnvPrime;
}

DigestHash
DigestStride::fold() const
{
    DigestHash h = kFnvOffset;
    h = digestMix(h, cycle);
    h = digestMix(h, global);
    h = digestMix(h, sources);
    h = digestMix(h, faults);
    h = digestMix(h, transport);
    h = digestMix(h, routers.size());
    for (DigestHash r : routers)
        h = digestMix(h, r);
    h = digestMix(h, nics.size());
    for (DigestHash n : nics)
        h = digestMix(h, n);
    return h;
}

std::vector<std::string>
divergentComponents(const DigestStride &a, const DigestStride &b)
{
    std::vector<std::string> out;
    if (a.global != b.global)
        out.push_back("global");
    if (a.sources != b.sources)
        out.push_back("sources");
    if (a.faults != b.faults)
        out.push_back("faults");
    if (a.transport != b.transport)
        out.push_back("transport");
    const std::size_t nr = std::max(a.routers.size(), b.routers.size());
    for (std::size_t i = 0; i < nr; ++i) {
        const DigestHash ra = i < a.routers.size() ? a.routers[i] : 0;
        const DigestHash rb = i < b.routers.size() ? b.routers[i] : 0;
        if (ra != rb)
            out.push_back("router:" + std::to_string(i));
    }
    const std::size_t nn = std::max(a.nics.size(), b.nics.size());
    for (std::size_t i = 0; i < nn; ++i) {
        const DigestHash na = i < a.nics.size() ? a.nics[i] : 0;
        const DigestHash nb = i < b.nics.size() ? b.nics[i] : 0;
        if (na != nb)
            out.push_back("nic:" + std::to_string(i));
    }
    return out;
}

DigestLedger::DigestLedger(const DigestParams &params) : params_(params)
{
    NOX_ASSERT(params_.interval > 0,
               "digest interval must be positive");
    if (!params_.jsonlPath.empty()) {
        out_.open(params_.jsonlPath, std::ios::trunc);
        if (!out_) {
            warn("digest: cannot open '", params_.jsonlPath,
                 "' for writing; ledger will be in-memory only");
        }
    }
}

void
DigestLedger::writeHeader(const std::string &fingerprint)
{
    if (!out_)
        return;
    out_ << "{\"type\": \"digest_header\", \"interval\": "
         << params_.interval << ", \"fingerprint\": \""
         << jsonEscape(fingerprint) << "\"}\n";
    out_.flush();
}

void
DigestLedger::record(DigestStride stride)
{
    if (out_) {
        out_ << "{\"type\": \"digest\", \"cycle\": " << stride.cycle
             << ", \"fold\": \"" << hex16(stride.fold())
             << "\", \"global\": \"" << hex16(stride.global)
             << "\", \"sources\": \"" << hex16(stride.sources)
             << "\", \"faults\": \"" << hex16(stride.faults)
             << "\", \"transport\": \"" << hex16(stride.transport)
             << "\", \"routers\": [";
        for (std::size_t i = 0; i < stride.routers.size(); ++i) {
            out_ << (i ? ", " : "") << "\"" << hex16(stride.routers[i])
                 << "\"";
        }
        out_ << "], \"nics\": [";
        for (std::size_t i = 0; i < stride.nics.size(); ++i) {
            out_ << (i ? ", " : "") << "\"" << hex16(stride.nics[i])
                 << "\"";
        }
        // Flush per stride: a crashed or killed run still leaves a
        // complete ledger prefix for the bisector to work from.
        out_ << "]}\n";
        out_.flush();
    }
    strides_.push_back(std::move(stride));
}

bool
loadDigestLedger(const std::string &path, LedgerFile *out,
                 std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open '" + path + "'";
        return false;
    }
    *out = LedgerFile{};
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string type;
        if (!findString(line, "type", &type)) {
            *err = path + ":" + std::to_string(lineno) +
                   ": missing \"type\" field";
            return false;
        }
        if (type == "digest_header") {
            std::uint64_t interval = 0;
            findU64(line, "interval", &interval);
            out->interval = interval;
            findString(line, "fingerprint", &out->fingerprint);
            continue;
        }
        if (type != "digest")
            continue; // foreign record kinds are tolerated
        DigestStride s;
        std::uint64_t cycle = 0;
        DigestHash fold = 0;
        if (!findU64(line, "cycle", &cycle) ||
            !findHex(line, "fold", &fold) ||
            !findHex(line, "global", &s.global) ||
            !findHex(line, "sources", &s.sources) ||
            !findHex(line, "faults", &s.faults) ||
            !findHex(line, "transport", &s.transport) ||
            !findHexArray(line, "routers", &s.routers) ||
            !findHexArray(line, "nics", &s.nics)) {
            *err = path + ":" + std::to_string(lineno) +
                   ": malformed digest record";
            return false;
        }
        s.cycle = cycle;
        if (s.fold() != fold) {
            *err = path + ":" + std::to_string(lineno) +
                   ": fold mismatch (corrupt or hand-edited ledger)";
            return false;
        }
        out->strides.push_back(std::move(s));
    }
    return true;
}

DigestDivergence
compareStrides(const std::vector<DigestStride> &a,
               const std::vector<DigestStride> &b)
{
    DigestDivergence d;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].cycle != b[i].cycle) {
            d.comparable = false;
            d.error = "stride " + std::to_string(i) +
                      " cycles misaligned (A=" +
                      std::to_string(a[i].cycle) +
                      " B=" + std::to_string(b[i].cycle) +
                      "); were the ledgers written with the same "
                      "digest_interval?";
            return d;
        }
        d.stridesCompared = i + 1;
        if (a[i] != b[i]) {
            d.diverged = true;
            d.cycle = a[i].cycle;
            d.components = divergentComponents(a[i], b[i]);
            return d;
        }
        d.lastAgreeCycle = static_cast<std::int64_t>(a[i].cycle);
    }
    return d;
}

DigestDivergence
compareLedgers(const LedgerFile &a, const LedgerFile &b)
{
    if (a.interval != 0 && b.interval != 0 &&
        a.interval != b.interval) {
        DigestDivergence d;
        d.comparable = false;
        d.error = "digest intervals differ (A=" +
                  std::to_string(a.interval) +
                  " B=" + std::to_string(b.interval) + ")";
        return d;
    }
    return compareStrides(a.strides, b.strides);
}

} // namespace nox
