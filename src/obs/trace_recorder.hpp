/**
 * @file
 * Flight-recorder tracing: a fixed-capacity ring buffer of TraceEvents.
 *
 * The recorder is deliberately passive: components call record() on
 * the hot path (a struct store into a preallocated ring — no
 * allocation, no I/O, no stats mutation), and everything expensive
 * (snapshotting, JSONL/Chrome export) happens off the cycle loop.
 * Because recording never touches simulator state, RNGs or stats,
 * enabling it cannot perturb a run: the observer-effect determinism
 * test asserts bit-identical NetworkStats with tracing on and off.
 *
 * Flight dumps: the first triggerFlightDump() call (drain timeout,
 * decode fault, corrupted delivery) writes the entire ring — the last
 * `capacity` events, which for any sanely sized ring spans well over
 * the last thousand cycles of activity around the failure — to a JSONL
 * file, turning a terse failure report into replayable evidence.
 */

#ifndef NOX_OBS_TRACE_RECORDER_HPP
#define NOX_OBS_TRACE_RECORDER_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/** Tracing configuration (see obsParamsFromConfig for the keys). */
struct TraceParams
{
    bool enabled = false;

    /** Ring capacity in events (each 32 bytes). */
    std::size_t capacity = 1u << 16;

    /** Chrome trace_event JSON export path ("" = no export). */
    std::string chromePath;

    /** Flight-recorder dump path ("" = triggers are still latched,
     *  for tests, but no file is written). */
    std::string flightPath = "nox-flight.jsonl";

    /** Dump the ring at end of run even without a failure trigger
     *  (deterministic input for offline `trace_tool analyze`). */
    bool flightOnExit = false;
};

/** Ring-buffer event recorder shared by one Network's components. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(const TraceParams &params);

    const TraceParams &params() const { return params_; }

    /** Stamp the cycle for all events recorded until the next call
     *  (the Network calls this once at the top of every step()). */
    void beginCycle(Cycle now) { now_ = now; }
    Cycle now() const { return now_; }

    /** Record one event (hot path: branch-free ring store). */
    void
    record(TraceEventKind kind, NodeId node, int port, std::uint64_t id,
           std::uint32_t arg = 0, bool nic = false)
    {
        TraceEvent &e = ring_[head_];
        e.cycle = now_;
        e.id = id;
        e.arg = arg;
        e.node = node;
        e.port = static_cast<std::int8_t>(port);
        e.kind = kind;
        e.nic = nic;
        if (++head_ == ring_.size())
            head_ = 0;
        ++total_;
    }

    /** Events ever recorded (wrapped events are still counted). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Events currently held in the ring. */
    std::size_t
    size() const
    {
        return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                     : ring_.size();
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Held events, oldest first (allocates; not for the hot path). */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Latch a flight-recorder trigger and, on the first trigger only,
     * dump the ring to params().flightPath as JSONL (a header object
     * naming the reason, trigger cycle and implicated components,
     * then one event per line, oldest first). Returns true if a file
     * was written by this call.
     */
    bool triggerFlightDump(const std::string &reason,
                           const std::vector<NodeId> &implicated);

    bool flightDumped() const { return dumped_; }
    const std::string &flightReason() const { return dumpReason_; }

    /** Write the ring as Chrome trace_event JSON (see chrome_trace). */
    bool writeChromeTrace(const std::string &path, int mesh_width,
                          int concentration) const;

    /** Capture / restore ring contents and dump latch (checkpointing).
     *  Ring capacity is construction geometry; restore() checks it. */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    TraceParams params_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
    Cycle now_ = 0;

    bool dumped_ = false;
    std::string dumpReason_;
};

} // namespace nox

#endif // NOX_OBS_TRACE_RECORDER_HPP
