#include "obs/metrics.hpp"

#include <fstream>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

MetricsSampler::MetricsSampler(const MetricsParams &params,
                               int num_routers)
    : params_(params), numRouters_(num_routers)
{
    NOX_ASSERT(params.interval > 0, "metrics interval must be > 0");
    NOX_ASSERT(num_routers > 0, "metrics need at least one router");
}

void
MetricsSampler::recordWindow(Cycle end,
                             std::vector<RouterWindowSample> routers,
                             int active_routers, int active_nics)
{
    NOX_ASSERT(routers.size() ==
                   static_cast<std::size_t>(numRouters_),
               "router sample arity mismatch");
    MetricsWindow w;
    w.start = windowStart_;
    w.end = end;
    w.flitsEjected = openEjected_;
    w.flitsEjectedMeasured = openEjectedMeasured_;
    w.activeRouters = active_routers;
    w.activeNics = active_nics;
    w.routers = std::move(routers);
    windows_.push_back(std::move(w));

    windowStart_ = end;
    openEjected_ = 0;
    openEjectedMeasured_ = 0;
}

std::uint64_t
MetricsSampler::totalEjected() const
{
    std::uint64_t t = openEjected_; // anything not yet flushed
    for (const MetricsWindow &w : windows_)
        t += w.flitsEjected;
    return t;
}

std::uint64_t
MetricsSampler::totalEjectedMeasured() const
{
    std::uint64_t t = openEjectedMeasured_;
    for (const MetricsWindow &w : windows_)
        t += w.flitsEjectedMeasured;
    return t;
}

bool
MetricsSampler::writeJsonl(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("metrics: cannot write ", path);
        return false;
    }
    for (const MetricsWindow &w : windows_) {
        out << "{\"start\":" << w.start << ",\"end\":" << w.end
            << ",\"flits_ejected\":" << w.flitsEjected
            << ",\"flits_ejected_measured\":" << w.flitsEjectedMeasured
            << ",\"active_routers\":" << w.activeRouters
            << ",\"active_nics\":" << w.activeNics << ",\"routers\":[";
        for (std::size_t r = 0; r < w.routers.size(); ++r) {
            const RouterWindowSample &s = w.routers[r];
            out << (r ? "," : "") << "{\"occ\":" << s.bufferedFlits
                << ",\"link\":" << s.linkFlits
                << ",\"coll\":" << s.xorCollisions
                << ",\"retry\":" << s.retryPending
                << ",\"active\":" << (s.active ? 1 : 0) << "}";
        }
        out << "]}\n";
    }
    inform("metrics: wrote ", windows_.size(), " window(s) to ", path);
    return true;
}

double
MetricsSampler::meanLinkUtilization(NodeId router) const
{
    std::uint64_t flits = 0;
    Cycle cycles = 0;
    for (const MetricsWindow &w : windows_) {
        flits += w.routers[static_cast<std::size_t>(router)].linkFlits;
        cycles += w.end - w.start;
    }
    return cycles ? static_cast<double>(flits) /
                        static_cast<double>(cycles)
                  : 0.0;
}

Table
MetricsSampler::heatmapTable(int width, int height) const
{
    std::vector<std::string> headers;
    headers.push_back("y\\x");
    for (int x = 0; x < width; ++x)
        headers.push_back(std::to_string(x));
    Table t(std::move(headers));
    for (int y = 0; y < height; ++y) {
        std::vector<std::string> row;
        row.push_back(std::to_string(y));
        for (int x = 0; x < width; ++x) {
            const NodeId r = static_cast<NodeId>(y * width + x);
            row.push_back(
                r < numRouters_
                    ? Table::num(meanLinkUtilization(r), 3)
                    : "-");
        }
        t.addRow(std::move(row));
    }
    return t;
}

void
MetricsSampler::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("METR"));
    w.i32(numRouters_);
    w.u64(windowStart_);
    w.u64(openEjected_);
    w.u64(openEjectedMeasured_);
    w.u64(windows_.size());
    for (const MetricsWindow &win : windows_) {
        w.u64(win.start);
        w.u64(win.end);
        w.u64(win.flitsEjected);
        w.u64(win.flitsEjectedMeasured);
        w.i32(win.activeRouters);
        w.i32(win.activeNics);
        w.u64(win.routers.size());
        for (const RouterWindowSample &s : win.routers) {
            w.u32(s.bufferedFlits);
            w.u32(s.linkFlits);
            w.u32(s.xorCollisions);
            w.u32(s.retryPending);
            w.boolean(s.active);
        }
    }
}

void
MetricsSampler::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("METR"));
    if (r.i32() != numRouters_)
        r.fail("metrics router-count mismatch (wrong geometry)");
    windowStart_ = r.u64();
    openEjected_ = r.u64();
    openEjectedMeasured_ = r.u64();
    windows_.clear();
    const std::uint64_t nwin = r.u64();
    windows_.reserve(static_cast<std::size_t>(nwin));
    for (std::uint64_t i = 0; i < nwin; ++i) {
        MetricsWindow win;
        win.start = r.u64();
        win.end = r.u64();
        win.flitsEjected = r.u64();
        win.flitsEjectedMeasured = r.u64();
        win.activeRouters = r.i32();
        win.activeNics = r.i32();
        const std::uint64_t nr = r.u64();
        win.routers.resize(static_cast<std::size_t>(nr));
        for (RouterWindowSample &s : win.routers) {
            s.bufferedFlits = r.u32();
            s.linkFlits = r.u32();
            s.xorCollisions = r.u32();
            s.retryPending = r.u32();
            s.active = r.boolean();
        }
        windows_.push_back(std::move(win));
    }
}

} // namespace nox
