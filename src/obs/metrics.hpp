/**
 * @file
 * Periodic per-router time-series metrics.
 *
 * The Network closes a sampling window every `interval` cycles and
 * hands the sampler one RouterWindowSample per router (window deltas
 * of monotonic counters plus instantaneous occupancies) along with the
 * active-set sizes and the window's ejection counts. Samples are
 * buffered in memory and exported at end of run as JSONL (one window
 * per line) and as a width x height heatmap table of mean link
 * utilization — the "where do cycles go" view the paper's figures
 * are built from.
 *
 * Conservation contract (tested): the sum of `flits_ejected` over all
 * windows equals NetworkStats::flitsEjected, and the sum of
 * `flits_ejected_measured` equals NetworkStats::flitsEjectedInWindow.
 */

#ifndef NOX_OBS_METRICS_HPP
#define NOX_OBS_METRICS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "noc/types.hpp"

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/** Metrics configuration (see obsParamsFromConfig for the keys). */
struct MetricsParams
{
    bool enabled = false;
    Cycle interval = 256;    ///< cycles per sampling window
    std::string jsonlPath;   ///< JSONL export path ("" = no export)
    bool heatmap = true;     ///< render the link-utilization heatmap
};

/** One router's contribution to one sampling window. */
struct RouterWindowSample
{
    std::uint32_t bufferedFlits = 0; ///< input-FIFO flits (instant)
    std::uint32_t linkFlits = 0;     ///< mesh-link flits sent (delta)
    std::uint32_t xorCollisions = 0; ///< NoX encoded transfers (delta)
    std::uint32_t retryPending = 0;  ///< occupied retry buffers (inst)
    bool active = false;             ///< in the scheduler active set
};

/** One closed sampling window. */
struct MetricsWindow
{
    Cycle start = 0;
    Cycle end = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t flitsEjectedMeasured = 0;
    int activeRouters = 0;
    int activeNics = 0;
    std::vector<RouterWindowSample> routers;
};

/** Buffers windows and renders the exports. */
class MetricsSampler
{
  public:
    MetricsSampler(const MetricsParams &params, int num_routers);

    const MetricsParams &params() const { return params_; }
    Cycle interval() const { return params_.interval; }

    /** True when @p now closes a window (called after ++now). */
    bool
    windowEnds(Cycle now) const
    {
        return now % params_.interval == 0;
    }

    /** Count one ejected flit into the open window (hot path). */
    void
    onFlitEjected(bool measured)
    {
        ++openEjected_;
        if (measured)
            ++openEjectedMeasured_;
    }

    /** Close the window ending at @p end. */
    void recordWindow(Cycle end,
                      std::vector<RouterWindowSample> routers,
                      int active_routers, int active_nics);

    /** True if the open window has accumulated anything (the final
     *  partial window is flushed only when non-degenerate). */
    bool
    openWindowDirty(Cycle now) const
    {
        return now != windowStart_;
    }

    std::size_t numWindows() const { return windows_.size(); }
    const MetricsWindow &window(std::size_t i) const
    {
        return windows_[i];
    }

    /** Sum of per-window ejection counts (conservation checks). */
    std::uint64_t totalEjected() const;
    std::uint64_t totalEjectedMeasured() const;

    /** Write one JSON object per window to @p path. */
    bool writeJsonl(const std::string &path) const;

    /**
     * Mean link utilization per router (mesh-link flits per cycle,
     * summed over the router's mesh outputs), over all windows.
     */
    double meanLinkUtilization(NodeId router) const;

    /** width x height grid of meanLinkUtilization (router r sits at
     *  column r % width, row r / width). */
    Table heatmapTable(int width, int height) const;

    /** Capture / restore closed windows and the open-window
     *  accumulators (checkpointing). */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    MetricsParams params_;
    int numRouters_;
    Cycle windowStart_ = 0;
    std::uint64_t openEjected_ = 0;
    std::uint64_t openEjectedMeasured_ = 0;
    std::vector<MetricsWindow> windows_;
};

} // namespace nox

#endif // NOX_OBS_METRICS_HPP
