/**
 * @file
 * Per-packet latency provenance: an online span builder that
 * decomposes every delivered packet's end-to-end latency into exact,
 * conserved components.
 *
 * The model is a telescoping sequence of *segments* per flit: source
 * queue residence, then one segment per hop (arrival at a router's
 * input FIFO until the cycle its wire value drives the output link),
 * and a final ejection segment at the sink NIC. Within each segment
 * the emitting component charges *explicit* stall cycles (credit
 * starvation, lost arbitration, XOR-collision recovery, retransmission
 * wait, reroute penalties) to the blocked flit, one cycle at a time,
 * from the same code branches that already decide the flit cannot
 * move; whatever remains of the segment is structural and is split
 * into the productive pipeline traversal (1 cycle per hop, 2 for the
 * ejection segment — matching the simulator's `latency = Δ + 1`
 * convention) and link/queue serialization. Because the segment
 * boundaries telescope from createCycle to delivery, the components
 * of every flit sum *exactly* to its measured latency:
 *
 *   sum(components) == deliverCycle - createCycle + 1
 *
 * for every delivered flit, across all router microarchitectures,
 * scheduling kernels, and fault modes. The invariant is re-validated
 * on every delivery; `conservationViolations()` stays zero on a
 * correct build.
 *
 * Two guards make the explicit charges safe without any coupling into
 * the routers' decision logic:
 *   - a *location* guard: a charge is accepted only when the charging
 *     component (router id / NIC node) matches where the tracker last
 *     placed the flit, so a stale reference held by an upstream retry
 *     buffer or a not-yet-arrived XOR constituent can never charge;
 *   - a *per-cycle* guard: at most one stall cycle per flit per
 *     cycle, so overlapping branches cannot double-bill.
 *
 * Like the PR 3 tracer and sampler, the provenance observer only
 * reads simulator state: enabling it must leave NetworkStats
 * bit-identical (enforced by the observer-effect tests). Aggregated
 * breakdowns therefore live here, not in NetworkStats.
 */

#ifndef NOX_OBS_PROVENANCE_HPP
#define NOX_OBS_PROVENANCE_HPP

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/**
 * Where a cycle of latency went. Every cycle of every delivered
 * packet's latency is attributed to exactly one of these.
 */
enum class LatencyComponent : std::uint8_t {
    /** Waiting in the source NIC queue before injection. */
    SourceQueue = 0,
    /** Productive pipeline traversal: one cycle per hop that actually
     *  moved the flit, plus the ejection decode/deliver stage. */
    RouterPipeline,
    /** Structural serialization: link propagation, FIFO position
     *  behind same-output siblings, and any residual wait not claimed
     *  by an explicit stall cause below. */
    LinkSerialization,
    /** Head flit presented but the output had no downstream credit. */
    CreditStall,
    /** Head flit requested an output and lost arbitration (or was
     *  fairness/wormhole-lock masked) to another input. */
    ArbLoss,
    /** NoX XOR machinery: collision losers awaiting chain decode,
     *  decode-register latch bubbles, multi-flit collision aborts,
     *  and Recovery-mode switch masking. */
    XorRecovery,
    /** Output link held by the soft-fault retry buffer: the cycles a
     *  nacked wire value spends waiting for / driving retransmission,
     *  and the cycles downstream traffic waits behind it. */
    Retransmit,
    /** Hard-fault degraded mode: abandoned wormhole locks and other
     *  post-rebuild reroute penalties. */
    Reroute,
};

/** Number of distinct latency components. */
constexpr std::size_t kNumLatencyComponents = 8;

/** Stable display name ("source_queue", "credit_stall", ...). */
const char *latencyComponentName(LatencyComponent c);

/** Configuration for the provenance observer. */
struct ProvenanceParams
{
    bool enabled = false;
    /** JSONL export path for the aggregated breakdowns ("" = none). */
    std::string jsonlPath;
};

/**
 * Aggregated latency attribution over a set of delivered packets.
 * `componentsSum() == totalCycles` whenever conservation held for
 * every contributing packet.
 */
struct LatencyBreakdown
{
    std::uint64_t packets = 0;
    std::uint64_t totalCycles = 0;
    std::array<std::uint64_t, kNumLatencyComponents> comp{};

    void
    add(std::uint64_t latency,
        const std::array<std::uint64_t, kNumLatencyComponents> &c)
    {
        ++packets;
        totalCycles += latency;
        for (std::size_t i = 0; i < kNumLatencyComponents; ++i)
            comp[i] += c[i];
    }

    std::uint64_t
    componentsSum() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : comp)
            s += v;
        return s;
    }

    std::uint64_t
    operator[](LatencyComponent c) const
    {
        return comp[static_cast<std::size_t>(c)];
    }

    bool
    identicalTo(const LatencyBreakdown &o) const
    {
        return packets == o.packets && totalCycles == o.totalCycles &&
               comp == o.comp;
    }
};

/**
 * The online per-flit span builder. One instance observes one
 * Network; the Network and its routers/NICs call the hooks below from
 * the same places that feed the PR 3 tracer.
 */
class LatencyProvenance
{
  public:
    explicit LatencyProvenance(const ProvenanceParams &params)
        : params_(params)
    {
    }

    const ProvenanceParams &params() const { return params_; }

    /** Packets created outside [start, end) are tracked (their cycles
     *  must still conserve) but excluded from the aggregates, mirroring
     *  NetworkStats' measurement window. */
    void
    setMeasurementWindow(Cycle start, Cycle end)
    {
        measureStart_ = start;
        measureEnd_ = end;
    }

    /** A packet entered a source queue: start one span per flit. */
    void onPacketCreate(const std::vector<FlitDesc> &flits, Cycle now);

    /**
     * An E2E retransmission attempt entered its source queue. Like
     * onPacketCreate, but the spans keep the *original* create cycle
     * (latency is logical-packet latency) and the cycles between that
     * original create and @p now — already spent by earlier, lost
     * attempts — are charged to Retransmit up front, preserving
     * conservation for whichever attempt completes the packet.
     */
    void onRetransmit(const std::vector<FlitDesc> &flits, Cycle now);

    /** Flit left the source queue into @p router's input FIFO. */
    void onInject(std::uint64_t uid, NodeId router, Cycle now);

    /**
     * Flit's wire value was accepted onto an output link this cycle.
     * Closes the current hop segment and opens the next at
     * (@p target, @p target_is_nic). Retransmissions of a previously
     * accepted value are NOT hop sends.
     */
    void onHopSend(std::uint64_t uid, Cycle now, NodeId target,
                   bool target_is_nic);

    /**
     * Charge one explicit stall cycle to @p uid, attributed to @p c.
     * Ignored unless the charging location (@p node, @p nic) matches
     * the flit's tracked position and no charge has landed this cycle.
     */
    void onStall(std::uint64_t uid, LatencyComponent c, NodeId node,
                 bool nic, Cycle now);

    /**
     * Flit delivered at its sink. Validates conservation, folds the
     * completing flit of each measured packet into the aggregates,
     * and retires the span.
     */
    void onDelivered(const FlitDesc &flit, Cycle now,
                     bool completes_packet);

    /** Hard-fault write-off: drop spans for condemned flits. */
    void forgetFlits(const std::vector<std::uint64_t> &uids);

    /** Duplicate-suppression write-off: drop one flit's span (the
     *  flit was dropped at the destination door, never delivered). */
    void forgetFlit(std::uint64_t uid) { tracks_.erase(uid); }

    const LatencyBreakdown &total() const { return total_; }

    const LatencyBreakdown &
    byClass(TrafficClass cls) const
    {
        return byClass_[static_cast<std::size_t>(cls)];
    }

    /** Per-(src,dest) flow aggregates, keyed src << 32 | dest. */
    const std::unordered_map<std::uint64_t, LatencyBreakdown> &
    byFlow() const
    {
        return byFlow_;
    }

    static std::uint64_t
    flowKey(NodeId src, NodeId dest)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dest);
    }

    /** Deliveries whose components failed to sum to the measured
     *  latency. Zero on a correct build; asserted by tests and
     *  nettest. */
    std::uint64_t
    conservationViolations() const
    {
        return conservationViolations_;
    }

    /** Spans still open (in-flight or never-delivered flits). */
    std::size_t openSpans() const { return tracks_.size(); }

    /**
     * Export the aggregates as JSONL: one "total" row, one row per
     * traffic class with deliveries, one row per flow. Every row
     * carries all eight component fields plus packets/total_cycles so
     * downstream checks can re-verify conservation. Returns false if
     * the file could not be written.
     */
    bool writeJsonl(const std::string &path) const;

    /** Capture / restore open spans and aggregates (checkpointing). */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    /** Open span state for one in-flight flit. */
    struct FlitTrack
    {
        Cycle segStart = 0;    ///< cycle the current segment opened
        Cycle lastCharge =     ///< cycle of the last explicit charge
            std::numeric_limits<Cycle>::max();
        std::uint32_t segStalls = 0; ///< explicit charges this segment
        NodeId at = kInvalidNode;    ///< tracked location (component)
        bool nic = false;            ///< location is a NIC
        bool injected = false;       ///< left the source queue
        Cycle createCycle = 0;
        TrafficClass cls = TrafficClass::Synthetic;
        PacketId packet = kInvalidPacket;
        NodeId src = kInvalidNode;
        NodeId dest = kInvalidNode;
        std::array<std::uint64_t, kNumLatencyComponents> comp{};
    };

    /** Close the open segment at @p now: charge @p pipeline productive
     *  cycles and attribute the unexplained remainder to
     *  LinkSerialization. */
    void closeSegment(FlitTrack &t, Cycle now, std::uint64_t pipeline);

    ProvenanceParams params_;
    Cycle measureStart_ = 0;
    Cycle measureEnd_ = std::numeric_limits<Cycle>::max();
    std::unordered_map<std::uint64_t, FlitTrack> tracks_;
    LatencyBreakdown total_;
    std::array<LatencyBreakdown, 3> byClass_{};
    std::unordered_map<std::uint64_t, LatencyBreakdown> byFlow_;
    std::uint64_t conservationViolations_ = 0;
};

} // namespace nox

#endif // NOX_OBS_PROVENANCE_HPP
