/**
 * @file
 * Simulator self-profiling: phase-scoped wall-clock timers plus
 * per-router work accounting.
 *
 * Where the observability subsystem answers "what did the *simulated
 * network* do", the profiler answers "where did the *host's* wall
 * clock go": every Network::step() is decomposed into a fixed
 * taxonomy of phases (traffic inject, link/retry, router evaluate,
 * NIC eject, scheduler bookkeeping, obs flush, checkpoint write) via
 * cheap monotonic-clock scopes, and every router accumulates a work
 * record (evaluations, flits moved, arbitration rounds) that
 * aggregates into a load-imbalance index over arbitrary spatial
 * partitions — the data a sharded parallel kernel will partition on.
 *
 * Guard pattern: like the tracer and provenance hooks the profiler is
 * a nullptr-when-off unique_ptr on the Network; ProfScope no-ops on a
 * null profiler, so the off path costs one branch per scope and the
 * simulation outcome is bit-identical either way (the profiler only
 * ever *reads* the clock — it never touches router, NIC, RNG or stats
 * state). Enforced by the observer-effect test.
 *
 * Coverage contract: the per-phase times are a decomposition of the
 * step timer, not an exact partition — loop control and the scope
 * bookkeeping itself run between scopes. The gap (2 uncounted clock
 * reads per scope plus unscoped glue) is bounded well under 5% of the
 * step total on any machine fast enough to run the simulator;
 * coverage() reports the realized fraction and trace_tool/CI check
 * it.
 */

#ifndef NOX_OBS_PROFILER_HPP
#define NOX_OBS_PROFILER_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "noc/types.hpp"

namespace nox {

/**
 * The fixed phase taxonomy of one simulated cycle's host cost.
 * Commit/retire loops and the fault/age sweeps count as Scheduler
 * ("scheduler bookkeeping"); tracer beginCycle, wake edges, metrics
 * window closes and telemetry beats count as ObsFlush.
 */
enum class SimPhase : std::uint8_t {
    TrafficInject = 0, ///< source ticks + NIC injection
    LinkRetry,         ///< link-layer retransmit/watchdog maintenance
    RouterEvaluate,    ///< router evaluation proper
    NicEject,          ///< NIC sink drain + eject decode
    Scheduler,         ///< fault clock, commit/retire, active-set work
    ObsFlush,          ///< tracer/metrics/telemetry in-loop work
    Checkpoint,        ///< checkpoint hook invocation
};

inline constexpr std::size_t kNumSimPhases = 7;

/** Stable lowercase name ("traffic_inject", ...). */
const char *simPhaseName(SimPhase phase);

/** Profiler configuration (see obsParamsFromConfig for the keys). */
struct ProfilerParams
{
    bool enabled = false;
    std::string jsonlPath; ///< profile JSONL export ("" = no export)
};

/** Accumulated cost of one phase. */
struct PhaseTotals
{
    std::uint64_t ns = 0;     ///< wall nanoseconds inside the phase
    std::uint64_t enters = 0; ///< scope entries
};

/** One router's work record (the shard-partitioning currency). */
struct RouterWork
{
    std::uint64_t evaluations = 0; ///< evaluate() calls (live count)
    std::uint64_t flitsMoved = 0;  ///< mesh + NIC link flits (derived)
    std::uint64_t arbRounds = 0;   ///< arbiter decisions (derived)
};

/** Header metadata for the profile JSONL export. */
struct ProfileMeta
{
    int width = 0;
    int height = 0;
    std::string arch;
    std::string sched;
};

/**
 * Load-imbalance index of a work distribution over a partition:
 * max-shard load divided by mean-shard load. 1.0 is perfectly
 * balanced, k is the worst case (all work on one of k shards); an
 * index of x means the slowest shard of a parallel step would run x
 * times longer than the average. A zero-work distribution is balanced
 * by convention (returns 1.0).
 *
 * @p shardOf maps each router to its shard in [0, numShards).
 */
double loadImbalance(const std::vector<std::uint64_t> &work,
                     const std::vector<int> &shardOf, int numShards);

/** Contiguous row-stripe partition of a width x height mesh into
 *  @p numShards shards (the natural mesh sharding: boundary links
 *  only between adjacent stripes). */
std::vector<int> rowStripePartition(int width, int height,
                                    int numShards);

/**
 * Phase-scoped wall-clock profiler for the Network cycle loop.
 *
 * Usage: beginStep()/endStep() bracket one step(); inside, each
 * phase is timed with a ProfScope. Phases must not nest — a second
 * enterPhase() while one is open is a simulator bug and panics.
 */
class PhaseProfiler
{
  public:
    PhaseProfiler(const ProfilerParams &params, int num_routers);

    const ProfilerParams &params() const { return params_; }

    // -- cycle scoping (hot path) --

    void
    beginStep()
    {
        NOX_ASSERT(stepStart_ == 0, "step timer already running");
        stepStart_ = nowNs();
    }

    void
    endStep()
    {
        NOX_ASSERT(stepStart_ != 0, "step timer not running");
        NOX_ASSERT(open_ == kNoPhase,
                   "phase left open across a step boundary");
        totalNs_ += nowNs() - stepStart_;
        stepStart_ = 0;
        ++steps_;
    }

    void
    enterPhase(SimPhase phase)
    {
        NOX_ASSERT(open_ == kNoPhase, "phase scopes must not nest (",
                   simPhaseName(phase), " inside ",
                   open_ == kNoPhase
                       ? "?"
                       : simPhaseName(static_cast<SimPhase>(open_)),
                   ")");
        open_ = static_cast<std::uint8_t>(phase);
        openStart_ = nowNs();
    }

    void
    leavePhase(SimPhase phase)
    {
        NOX_ASSERT(open_ == static_cast<std::uint8_t>(phase),
                   "leaving phase ", simPhaseName(phase),
                   " that is not open");
        PhaseTotals &t = phases_[static_cast<std::size_t>(phase)];
        t.ns += nowNs() - openStart_;
        t.enters += 1;
        open_ = kNoPhase;
    }

    // -- per-router work (hot path, profiler-on only) --

    void
    countEval(NodeId router)
    {
        evals_[static_cast<std::size_t>(router)] += 1;
    }

    /** Always-tick kernel: every router evaluated this cycle. */
    void
    countEvalsAll()
    {
        for (std::uint64_t &e : evals_)
            e += 1;
    }

    // -- reporting --

    std::uint64_t steps() const { return steps_; }
    std::uint64_t totalNs() const { return totalNs_; }

    const PhaseTotals &
    phase(SimPhase p) const
    {
        return phases_[static_cast<std::size_t>(p)];
    }

    /** Sum of all per-phase nanoseconds. */
    std::uint64_t phaseNsSum() const;

    /** phaseNsSum() / totalNs() — the fraction of the step timer the
     *  phase scopes account for (1.0 when no step was timed). */
    double coverage() const;

    int numRouters() const
    {
        return static_cast<int>(evals_.size());
    }

    std::uint64_t
    evaluations(NodeId router) const
    {
        return evals_[static_cast<std::size_t>(router)];
    }

    /**
     * Report-time injection of the derived work counters (flits
     * moved, arbitration rounds) from the router's own monotonic
     * energy-event counters — the hot path pays nothing for them.
     */
    void recordRouterWork(NodeId router, std::uint64_t flits_moved,
                          std::uint64_t arb_rounds);

    /** Assembled work record (evaluations live, the rest as last
     *  recorded via recordRouterWork). */
    RouterWork routerWork(NodeId router) const;

    /** Per-router evaluation counts (imbalance computations). */
    const std::vector<std::uint64_t> &
    evaluationCounts() const
    {
        return evals_;
    }

    /**
     * Write the profile as JSONL: one header object, one object per
     * phase, one per router, and precomputed imbalance lines for a
     * default 4-way row-stripe partition. @return false on I/O error.
     */
    bool writeJsonl(const std::string &path,
                    const ProfileMeta &meta) const;

  private:
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    static constexpr std::uint8_t kNoPhase = 0xFF;

    ProfilerParams params_;
    PhaseTotals phases_[kNumSimPhases];
    std::vector<std::uint64_t> evals_;
    std::vector<std::uint64_t> flitsMoved_;
    std::vector<std::uint64_t> arbRounds_;
    std::uint64_t totalNs_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t stepStart_ = 0;
    std::uint64_t openStart_ = 0;
    std::uint8_t open_ = kNoPhase;
};

/** RAII phase scope; no-ops on a null profiler (the off path). */
class ProfScope
{
  public:
    ProfScope(PhaseProfiler *prof, SimPhase phase)
        : prof_(prof), phase_(phase)
    {
        if (prof_)
            prof_->enterPhase(phase_);
    }

    ~ProfScope()
    {
        if (prof_)
            prof_->leavePhase(phase_);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    PhaseProfiler *prof_;
    SimPhase phase_;
};

} // namespace nox

#endif // NOX_OBS_PROFILER_HPP
