/**
 * @file
 * Chrome trace_event JSON export of a TraceRecorder ring.
 *
 * The emitted file loads directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing: each router becomes a process track (named with
 * its mesh coordinates), each port a thread track, and every recorded
 * event an instant on its (router, port) track with the flit id and
 * kind-specific detail in args. NIC-side events get their own process
 * tracks so injection/ejection reads separately from switching.
 * Timestamps are the simulated cycle numbers (1 cycle = 1 "us" in the
 * viewer's timeline — only relative position matters).
 */

#ifndef NOX_OBS_CHROME_TRACE_HPP
#define NOX_OBS_CHROME_TRACE_HPP

#include <string>

namespace nox {

class TraceRecorder;

/**
 * Write @p recorder's held events to @p path. @p mesh_width maps
 * router ids to (x, y) names; @p concentration maps NIC node ids to
 * their router. Returns false (with a warning) if the file cannot be
 * written.
 */
bool writeChromeTraceFile(const TraceRecorder &recorder,
                          const std::string &path, int mesh_width,
                          int concentration);

} // namespace nox

#endif // NOX_OBS_CHROME_TRACE_HPP
