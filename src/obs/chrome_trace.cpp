#include "obs/chrome_trace.hpp"

#include <fstream>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "obs/trace_recorder.hpp"

namespace nox {

namespace {

/** NIC tracks live in a disjoint pid range from router tracks. */
constexpr int kNicPidBase = 1 << 20;

/** Local port naming without linking nox_noc (ports 0..3 are the
 *  mesh directions, >= 4 the local/terminal ports). */
std::string
obsPortName(int port)
{
    switch (port) {
      case 0:
        return "N";
      case 1:
        return "E";
      case 2:
        return "S";
      case 3:
        return "W";
      default:
        break;
    }
    return "L" + std::to_string(port - 4);
}

int
eventPid(const TraceEvent &e)
{
    return e.nic ? kNicPidBase + e.node : static_cast<int>(e.node);
}

/** tid 0 is the node-scope track; ports are offset by one. */
int
eventTid(const TraceEvent &e)
{
    return e.port < 0 ? 0 : e.port + 1;
}

void
writeMetadata(std::ostream &os, int pid, int tid,
              const std::string &name, bool process, bool &first)
{
    os << (first ? "" : ",\n") << " {\"name\":\""
       << (process ? "process_name" : "thread_name")
       << "\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << name << "\"}}";
    first = false;
}

} // namespace

bool
writeChromeTraceFile(const TraceRecorder &recorder,
                     const std::string &path, int mesh_width,
                     int concentration)
{
    std::ofstream out(path);
    if (!out) {
        warn("chrome trace: cannot write ", path);
        return false;
    }
    const std::vector<TraceEvent> events = recorder.snapshot();

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;

    // Name every (pid, tid) track that actually carries events.
    std::set<std::pair<int, int>> tracks;
    for (const TraceEvent &e : events)
        tracks.insert({eventPid(e), eventTid(e)});
    std::set<int> pids;
    for (const auto &[pid, tid] : tracks) {
        if (pids.insert(pid).second) {
            std::string name;
            if (pid >= kNicPidBase) {
                const int node = pid - kNicPidBase;
                const int router =
                    concentration > 0 ? node / concentration : node;
                name = "nic " + std::to_string(node) + " @ router " +
                       std::to_string(router);
            } else {
                const int x = mesh_width > 0 ? pid % mesh_width : pid;
                const int y = mesh_width > 0 ? pid / mesh_width : 0;
                name = "router " + std::to_string(pid) + " (" +
                       std::to_string(x) + "," + std::to_string(y) +
                       ")";
            }
            writeMetadata(out, pid, 0, name, true, first);
        }
        writeMetadata(out, pid, tid,
                      tid == 0 ? std::string("node")
                               : "port " + obsPortName(tid - 1),
                      false, first);
    }

    for (const TraceEvent &e : events) {
        out << (first ? "" : ",\n") << " {\"name\":\""
            << traceEventKindName(e.kind)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
            << ",\"pid\":" << eventPid(e) << ",\"tid\":" << eventTid(e)
            << ",\"args\":{\"id\":" << e.id << ",\"arg\":" << e.arg
            << "}}";
        first = false;
    }
    out << "\n]}\n";
    inform("chrome trace: wrote ", events.size(), " event(s) to ",
           path, " (open in ui.perfetto.dev)");
    return true;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path, int mesh_width,
                                int concentration) const
{
    return writeChromeTraceFile(*this, path, mesh_width, concentration);
}

} // namespace nox
