#include "obs/telemetry.hpp"

#include <iostream>
#include <sstream>

#include "common/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace nox {

namespace {

/** "87.3k" / "1.2M" — compact rates for the one-line rendering. */
std::string
compactRate(double v)
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed;
    if (v >= 1e6)
        os << v / 1e6 << "M";
    else if (v >= 1e3)
        os << v / 1e3 << "k";
    else
        os << v;
    return os.str();
}

} // namespace

RunTelemetry::RunTelemetry(const TelemetryParams &params)
    : params_(params), start_(std::chrono::steady_clock::now())
{
    NOX_ASSERT(params_.interval > 0,
               "telemetry interval must be positive");
    if (!params_.jsonlPath.empty()) {
        out_.open(params_.jsonlPath);
        if (!out_)
            warn("cannot write telemetry JSONL: ", params_.jsonlPath);
    }
}

std::int64_t
RunTelemetry::peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::int64_t>(ru.ru_maxrss / 1024); // bytes
#else
    return static_cast<std::int64_t>(ru.ru_maxrss); // KiB
#endif
#else
    return 0;
#endif
}

void
RunTelemetry::beat(const TelemetrySample &sample)
{
    TelemetryRecord rec;
    rec.sample = sample;
    rec.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    const double dt = rec.wallSeconds - lastBeatWall_;
    const double dc =
        static_cast<double>(sample.cycle - lastBeatCycle_);
    rec.instCyclesPerSec = dt > 0.0 ? dc / dt : 0.0;
    rec.cumCyclesPerSec =
        rec.wallSeconds > 0.0
            ? static_cast<double>(sample.cycle) / rec.wallSeconds
            : 0.0;
    if (targetCycles_ > sample.cycle && rec.cumCyclesPerSec > 0.0) {
        rec.etaSeconds =
            static_cast<double>(targetCycles_ - sample.cycle) /
            rec.cumCyclesPerSec;
    }
    rec.peakRssKb = peakRssKb();

    if (out_.is_open())
        out_ << formatJson(rec, targetCycles_) << '\n' << std::flush;
    if (params_.progress)
        std::cerr << "[telemetry] " << formatLine(rec, targetCycles_)
                  << '\n';

    lastBeatCycle_ = sample.cycle;
    lastBeatWall_ = rec.wallSeconds;
    last_ = rec;
    ++beats_;
}

std::string
RunTelemetry::formatJson(const TelemetryRecord &rec,
                         Cycle target_cycles)
{
    const TelemetrySample &s = rec.sample;
    std::ostringstream os;
    os.precision(6);
    os << "{\"type\": \"telemetry\", \"cycle\": " << s.cycle
       << ", \"target_cycles\": " << target_cycles
       << ", \"wall_s\": " << rec.wallSeconds
       << ", \"cps_inst\": " << rec.instCyclesPerSec
       << ", \"cps_cum\": " << rec.cumCyclesPerSec
       << ", \"eta_s\": " << rec.etaSeconds
       << ", \"active_routers\": " << s.activeRouters
       << ", \"active_nics\": " << s.activeNics
       << ", \"inflight\": " << s.packetsInFlight
       << ", \"injected\": " << s.packetsInjected
       << ", \"ejected\": " << s.packetsEjected
       << ", \"faults_injected\": " << s.faultsInjected
       << ", \"retransmissions\": " << s.retransmissions
       << ", \"e2e_retransmits\": " << s.e2eRetransmits
       << ", \"dup_suppressed\": " << s.dupSuppressed
       << ", \"heals_applied\": " << s.healsApplied
       << ", \"dead_entities\": " << s.deadEntities
       << ", \"arena_live\": " << s.arenaLive
       << ", \"arena_growths\": " << s.arenaGrowths
       << ", \"peak_rss_kb\": " << rec.peakRssKb
       << ", \"ckpt_age\": " << s.checkpointAge
       << ", \"digest_strides\": " << s.digestStrides
       << ", \"last_digest_cycle\": " << s.lastDigestCycle << "}";
    return os.str();
}

std::string
RunTelemetry::formatLine(const TelemetryRecord &rec,
                         Cycle target_cycles)
{
    const TelemetrySample &s = rec.sample;
    std::ostringstream os;
    os << "cycle " << s.cycle;
    if (target_cycles > 0) {
        os << "/" << target_cycles;
        os.precision(1);
        os << std::fixed << " ("
           << 100.0 * static_cast<double>(s.cycle) /
                  static_cast<double>(target_cycles)
           << "%)";
        os.unsetf(std::ios::fixed);
    }
    os << " | " << compactRate(rec.instCyclesPerSec) << " c/s (cum "
       << compactRate(rec.cumCyclesPerSec) << ")";
    if (rec.etaSeconds >= 0.0) {
        os.precision(1);
        os << std::fixed << " | eta " << rec.etaSeconds << "s";
        os.unsetf(std::ios::fixed);
    }
    os << " | active " << s.activeRouters << "r+" << s.activeNics
       << "n | inflight " << s.packetsInFlight;
    if (s.faultsInjected > 0 || s.retransmissions > 0) {
        os << " | faults " << s.faultsInjected << "/retx "
           << s.retransmissions;
    }
    if (s.e2eRetransmits > 0 || s.dupSuppressed > 0) {
        os << " | e2e retx " << s.e2eRetransmits << "/dup "
           << s.dupSuppressed;
    }
    if (s.healsApplied > 0 || s.deadEntities > 0) {
        os << " | heals " << s.healsApplied << "/dead "
           << s.deadEntities;
    }
    os << " | arena " << s.arenaLive;
    if (rec.peakRssKb > 0) {
        os.precision(1);
        os << std::fixed << " | rss "
           << static_cast<double>(rec.peakRssKb) / 1024.0 << "MB";
        os.unsetf(std::ios::fixed);
    }
    if (s.checkpointAge >= 0)
        os << " | ckpt age " << s.checkpointAge;
    if (s.digestStrides >= 0) {
        os << " | digest " << s.digestStrides << "@"
           << s.lastDigestCycle;
    }
    return os.str();
}

} // namespace nox
