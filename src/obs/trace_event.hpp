/**
 * @file
 * Compact binary trace events for the flight-recorder ring buffer.
 *
 * One TraceEvent records one micro-architectural occurrence: a step in
 * a flit's lifecycle (create/inject/send/encode/decode/eject), a
 * link-layer protection event (CRC reject, nack, retransmission,
 * credit resync), or a scheduling-kernel transition (wake/retire).
 * Events are 32 bytes and are written into a fixed-capacity ring, so
 * recording cost is a branch plus a struct store — cheap enough to
 * leave compiled into every hot path behind an `if (tracer)` guard
 * that is false (a null pointer) whenever tracing is disabled.
 */

#ifndef NOX_OBS_TRACE_EVENT_HPP
#define NOX_OBS_TRACE_EVENT_HPP

#include <cstdint>

#include "noc/types.hpp"

namespace nox {

/** What happened. Grouped by emitting layer. */
enum class TraceEventKind : std::uint8_t {
    // -- flit lifecycle --
    PacketCreate = 0, ///< packet entered a source queue (Network)
    FlitInject,       ///< flit left the source queue into the router
    FlitSend,         ///< flit (or encoded chain value) drove a link
    Arbitrate,        ///< an output arbiter issued a grant
    XorEncode,        ///< NoX collision: encoded value on the link
    XorDecode,        ///< an XOR decode recovered a flit
    NoxAbort,         ///< multi-flit collision abort (§2.7)
    FlitEject,        ///< decoded flit delivered at its NIC sink
    PacketDone,       ///< all flits of a packet delivered
    // -- link protection / faults --
    FaultInject,   ///< the injector perturbed a link event
    CrcReject,     ///< receiver CRC check rejected a corrupted flit
    LinkNack,      ///< sender received a nack for its retry entry
    Retransmit,    ///< retry buffer re-drove the wire
    CreditResync,  ///< watchdog restored lost credits
    DecodeFault,   ///< XOR decode integrity violation observed
    CorruptEscape, ///< corrupted payload delivered at a sink
    // -- hard (fail-stop) faults --
    HardFault,         ///< a link or router was killed permanently
    TableRebuild,      ///< the routing table was rebuilt on a fault map
    UnreachableReject, ///< injection refused: destination unreachable
    // -- scheduling kernel --
    SchedWake,   ///< component joined the active set
    SchedRetire, ///< quiescent component left the active set
    // -- healing / E2E transport (appended: snapshot-stable values) --
    HealApply,     ///< a killed link or router was revived
    E2eRetransmit, ///< source NIC retransmitted a timed-out packet
    E2eAck,        ///< E2E ack retired a source window entry
    DupSuppress,   ///< duplicate flit dropped at the destination door
};

/** Stable display name ("flit_send", "crc_reject", ...). */
const char *traceEventKindName(TraceEventKind kind);

/**
 * Inverse of traceEventKindName: parse a display name back into the
 * enum (used by the offline flight-dump analyzer). Returns false when
 * @p name is not a known kind.
 */
bool parseTraceEventKind(const char *name, TraceEventKind &out);

/**
 * One recorded event. `node` is the emitting component (router id, or
 * NIC node id for NIC-side events — the chrome exporter separates the
 * two into distinct tracks); `port` is the relevant port or -1;
 * `id` is the flit uid (or packet id for packet-scope events, or the
 * flip mask for FaultInject); `arg` carries kind-specific detail
 * (collision fan-in, arbitration winner, restored credits, ...).
 */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint64_t id = 0;
    std::uint32_t arg = 0;
    NodeId node = kInvalidNode;
    std::int8_t port = -1;
    TraceEventKind kind = TraceEventKind::PacketCreate;
    bool nic = false; ///< emitted by a NIC (shares node numbering)
};

} // namespace nox

#endif // NOX_OBS_TRACE_EVENT_HPP
