/**
 * @file
 * End-to-end application flow: generate a cache-coherence packet
 * trace with the built-in 64-core CMP model, inspect its structure,
 * optionally save/reload it, and replay it through a chosen router
 * architecture.
 *
 *   $ ./coherence_demo [workload=tpcc] [arch=nox] [horizon_ns=6000]
 *                      [save=trace.txt]
 */

#include <iostream>

#include "coherence/trace_generator.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    const std::string workload = config.getString("workload", "tpcc");
    const RouterArch arch =
        parseArch(config.getString("arch", "nox").c_str());
    const double horizon = config.getDouble("horizon_ns", 6000.0);
    const double warmup = config.getDouble("warmup_ns", 15000.0);

    CmpParams params;
    std::cout << "=== system (Table 1) ===\n";
    params.printTable(std::cout);

    std::cout << "\n=== generating '" << workload << "' trace ("
              << horizon << " ns after " << warmup
              << " ns cache warmup) ===\n";
    CoherenceTraceGenerator gen(params, findWorkload(workload), 123);
    const Trace trace = gen.generate(horizon, warmup);
    const TraceGenStats &s = gen.stats();

    Table t({"metric", "value"});
    t.addRow({"memory operations", std::to_string(s.memOps)});
    t.addRow({"L1 hit rate",
              Table::num(100.0 * static_cast<double>(s.l1Hits) /
                             static_cast<double>(s.memOps),
                         1) +
                  " %"});
    t.addRow({"L2 misses (coherence transactions)",
              std::to_string(s.l2Misses)});
    t.addRow({"GetS / GetM", std::to_string(s.getS) + " / " +
                                 std::to_string(s.getM)});
    t.addRow({"invalidations", std::to_string(s.invalidations)});
    t.addRow({"3-hop forwards", std::to_string(s.forwards)});
    t.addRow({"writebacks", std::to_string(s.writebacks)});
    t.addRow({"trace packets", std::to_string(trace.records.size())});
    t.addRow({"control packets", std::to_string(s.ctrlPackets)});
    t.addRow({"data packets", std::to_string(s.dataPackets)});
    t.addRow({"request-net load",
              Table::num(trace.bytesPerNsPerNode(params.cores, 0), 2) +
                  " GB/s/node"});
    t.addRow({"reply-net load",
              Table::num(trace.bytesPerNsPerNode(params.cores, 1), 2) +
                  " GB/s/node"});
    t.print(std::cout);

    if (config.has("save")) {
        const std::string path = config.getString("save");
        writeTraceFile(path, trace);
        const Trace reloaded = readTraceFile(path);
        std::cout << "\nsaved " << reloaded.records.size()
                  << " records to " << path << " (round-trip ok)\n";
    }

    std::cout << "\n=== replaying through " << archName(arch)
              << " request+reply networks ===\n";
    AppConfig app;
    app.arch = arch;
    const AppResult r = runApplication(app, trace);

    Table rt({"metric", "value"});
    rt.addRow({"clock period", Table::num(r.periodNs, 2) + " ns"});
    rt.addRow({"packets delivered", std::to_string(r.packets)});
    rt.addRow({"avg network latency",
               Table::num(r.avgLatencyNs, 2) + " ns"});
    rt.addRow({"avg total latency (incl. source queue)",
               Table::num(r.avgTotalLatencyNs, 2) + " ns"});
    rt.addRow({"request net latency",
               Table::num(r.avgLatencyNsRequest, 2) + " ns"});
    rt.addRow({"reply net latency",
               Table::num(r.avgLatencyNsReply, 2) + " ns"});
    rt.addRow({"energy/packet",
               Table::num(r.energyPerPacketPj, 1) + " pJ"});
    rt.addRow({"energy-delay^2",
               Table::num(r.ed2, 0) + " pJ*ns^2"});
    rt.addRow({"network power", Table::num(r.powerW, 2) + " W"});
    rt.print(std::cout);
    return 0;
}
