/**
 * @file
 * PhysicalChannelGroup demo (§2.8): drive a request/reply pair of
 * physical networks in lockstep through the library API, the way the
 * paper's application evaluation isolates coherence classes.
 *
 *   $ ./multichannel [arch=nox] [channels=2] [packets=2000]
 */

#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/channel_group.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    const RouterArch arch =
        parseArch(config.getString("arch", "nox").c_str());
    const int channels =
        static_cast<int>(config.getInt("channels", 2));
    const int packets =
        static_cast<int>(config.getInt("packets", 2000));

    NetworkParams params;
    PhysicalChannelGroup group(params, arch, channels);

    std::cout << "driving " << channels << " parallel "
              << archName(arch)
              << " networks with a request/reply pattern...\n";

    // A toy coherence-ish exchange: random requesters send 1-flit
    // requests; each is answered by a 9-flit reply from the "home".
    Rng rng(42);
    int sent = 0;
    while (sent < packets || group.packetsInFlight() > 0) {
        if (sent < packets && rng.nextBernoulli(0.6)) {
            const NodeId a = static_cast<NodeId>(rng.nextBounded(64));
            NodeId b = a;
            while (b == a)
                b = static_cast<NodeId>(rng.nextBounded(64));
            group.injectPacket(a, b, 1, TrafficClass::Request);
            group.injectPacket(b, a, 9, TrafficClass::Reply);
            sent += 2;
        }
        group.step();
        if (group.now() > 200000)
            break; // safety
    }

    Table t({"metric", "value"});
    t.addRow({"cycles", std::to_string(group.now())});
    t.addRow({"packets injected",
              std::to_string(group.packetsInjected())});
    t.addRow({"packets delivered",
              std::to_string(group.packetsEjected())});
    for (int c = 0; c < channels; ++c) {
        t.addRow({"channel " + std::to_string(c) + " packets",
                  std::to_string(
                      group.channel(c).stats().packetsEjected)});
    }
    t.addRow({"avg latency [cycles]",
              Table::num(group.mergedLatency().mean(), 2)});
    t.addRow({"link flits",
              std::to_string(group.totalEnergyEvents().linkFlits)});
    t.print(std::cout);

    return group.packetsInFlight() == 0 ? 0 : 1;
}
