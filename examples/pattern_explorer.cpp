/**
 * @file
 * Interactive-ish exploration of the synthetic design space: compare
 * all four router architectures on one pattern/load point, or sweep
 * one architecture across every pattern.
 *
 *   $ ./pattern_explorer pattern=tornado rate_mbps=1500
 *   $ ./pattern_explorer sweep=nox rate_mbps=2000
 */

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"

namespace {

using namespace nox;

RunResult
point(RouterArch arch, PatternKind pattern, double mbps,
      bool self_similar, const Config &config)
{
    SyntheticConfig c;
    c.arch = arch;
    c.pattern = pattern;
    c.selfSimilar = self_similar;
    c.injectionMBps = mbps;
    c.warmupCycles = config.getUint("warmup", 6000);
    c.measureCycles = config.getUint("measure", 15000);
    return runSynthetic(c);
}

void
addRow(Table &t, const std::string &label, const RunResult &r)
{
    if (r.saturated) {
        t.addRow({label, "sat", "sat", "sat",
                  Table::num(r.acceptedMBps, 0)});
        return;
    }
    t.addRow({label, Table::num(r.avgLatencyCycles, 2),
              Table::num(r.avgLatencyNs, 2), Table::num(r.ed2, 0),
              Table::num(r.acceptedMBps, 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    const double mbps = config.getDouble("rate_mbps", 1500.0);

    Table t({"case", "latency [cyc]", "latency [ns]", "ED^2",
             "accepted MB/s"});

    if (config.has("sweep")) {
        const RouterArch arch =
            parseArch(config.getString("sweep").c_str());
        std::cout << archName(arch) << " across all patterns at "
                  << mbps << " MB/s/node:\n";
        for (PatternKind p : kAllPatterns)
            addRow(t, patternName(p),
                   point(arch, p, mbps, false, config));
        addRow(t, "selfsimilar",
               point(arch, PatternKind::UniformRandom, mbps, true,
                     config));
    } else {
        const PatternKind pattern =
            parsePattern(config.getString("pattern", "uniform"));
        std::cout << "all architectures on " << patternName(pattern)
                  << " at " << mbps << " MB/s/node:\n";
        for (RouterArch a : kAllArchs)
            addRow(t, archName(a),
                   point(a, pattern, mbps, false, config));
    }
    t.print(std::cout);
    return 0;
}
