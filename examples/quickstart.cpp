/**
 * @file
 * Quickstart: the smallest useful noxsim program.
 *
 * Builds the paper's 8x8 mesh of NoX routers, offers uniform random
 * single-flit traffic at 1 GB/s/node, and prints latency, throughput
 * and energy numbers.
 *
 *   $ ./quickstart [arch=nox] [rate_mbps=1000]
 */

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);

    SyntheticConfig c;
    c.arch = parseArch(config.getString("arch", "nox").c_str());
    c.injectionMBps = config.getDouble("rate_mbps", 1000.0);
    c.pattern = parsePattern(config.getString("pattern", "uniform"));

    std::cout << "simulating a " << c.width << "x" << c.height
              << " mesh of " << archName(c.arch) << " routers, "
              << patternName(c.pattern) << " traffic at "
              << c.injectionMBps << " MB/s/node...\n\n";

    const RunResult r = runSynthetic(c);

    Table t({"metric", "value"});
    t.addRow({"clock period", Table::num(r.periodNs, 2) + " ns"});
    t.addRow({"offered load",
              Table::num(r.offeredFlitsPerCycle, 3) + " flits/cycle"});
    t.addRow({"accepted load",
              Table::num(r.acceptedMBps, 0) + " MB/s/node"});
    t.addRow({"packets measured", std::to_string(r.packetsMeasured)});
    t.addRow({"avg latency",
              Table::num(r.avgLatencyCycles, 2) + " cycles = " +
                  Table::num(r.avgLatencyNs, 2) + " ns"});
    t.addRow({"network power", Table::num(r.powerW, 2) + " W"});
    t.addRow({"energy/packet",
              Table::num(r.energyPerPacketPj, 1) + " pJ"});
    t.addRow({"energy-delay^2",
              Table::num(r.ed2, 0) + " pJ*ns^2"});
    t.addRow({"link energy share",
              Table::num(r.energy.linkFraction() * 100.0, 1) + " %"});
    t.addRow({"saturated", r.saturated ? "yes" : "no"});
    t.print(std::cout);
    return 0;
}
