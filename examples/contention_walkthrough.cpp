/**
 * @file
 * Cycle-by-cycle walkthrough of the paper's timing examples
 * (Figures 2, 3 and 7): packet A arrives at cycle 0; packets B and C
 * collide at cycle 2; all are destined for the same output.
 *
 * For each router architecture the per-cycle link activity is shown;
 * for NoX the downstream decode (Figure 3) is replayed as well. This
 * is the fastest way to *see* the XOR-coded crossbar at work.
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "noc/network.hpp"
#include "noc/xor_decoder.hpp"
#include "routers/factory.hpp"

namespace {

using namespace nox;

constexpr NodeId kCenter = 4;   // (1,1) in the 3x3 harness mesh
constexpr NodeId kEast = 5;

FlitDesc
makeFlit(PacketId packet, char tag)
{
    FlitDesc d;
    d.uid = flitUid(packet, 0);
    d.packet = packet;
    d.packetSize = 1;
    d.src = 0;
    d.dest = kEast;
    d.payload = expectedPayload(packet, 0);
    (void)tag;
    return d;
}

std::string
describe(const WireFlit &flit)
{
    auto name = [](PacketId p) {
        return std::string(1, static_cast<char>('A' + p - 1));
    };
    if (!flit.encoded)
        return name(flit.parts.front().packet);
    std::string s;
    for (std::size_t i = 0; i < flit.parts.size(); ++i) {
        s += name(flit.parts[i].packet);
        if (i + 1 < flit.parts.size())
            s += "^";
    }
    return s + " (encoded)";
}

void
walk(RouterArch arch, std::vector<WireFlit> *captured)
{
    NetworkParams params;
    params.width = 3;
    params.height = 3;
    params.router.bufferDepth = 8;
    auto net = makeNetwork(params, arch);
    Router &dut = net->router(kCenter);
    Router &east = net->router(kEast);

    std::cout << "--- " << archName(arch) << " ---\n";
    const FlitDesc a = makeFlit(1, 'A');
    const FlitDesc b = makeFlit(2, 'B');
    const FlitDesc c = makeFlit(3, 'C');
    dut.inputFifo(kPortNorth).push(WireFlit::fromDesc(a));

    std::uint64_t wasted_before = 0;
    for (Cycle t = 0; t < 8; ++t) {
        if (t == 2) {
            dut.inputFifo(kPortSouth).push(WireFlit::fromDesc(b));
            dut.inputFifo(kPortWest).push(WireFlit::fromDesc(c));
        }
        dut.evaluate(t);
        dut.commit();
        east.commit();
        net->nic(kCenter).commit();

        std::cout << "  cycle " << t << ": output = ";
        const std::uint64_t wasted = dut.energy().linkWastedCycles;
        FlitFifo &east_in = east.inputFifo(kPortWest);
        if (!east_in.empty()) {
            WireFlit f = east_in.pop();
            dut.stageCredit(kPortEast);
            std::cout << describe(f);
            if (captured)
                captured->push_back(f);
        } else if (wasted > wasted_before) {
            std::cout << "<invalid value driven: wasted cycle>";
        } else {
            std::cout << "idle";
        }
        wasted_before = wasted;
        std::cout << '\n';
    }
    std::cout << '\n';
}

void
decodeWalkthrough(const std::vector<WireFlit> &received)
{
    std::cout << "--- NoX downstream input port decode (Figure 3) "
                 "---\n";
    FlitFifo fifo(8);
    XorDecoder decoder;
    std::size_t next = 0;
    for (Cycle t = 0; t < 10; ++t) {
        if (next < received.size())
            fifo.push(WireFlit(received[next++]));
        const DecodeView v = decoder.view(fifo);
        std::cout << "  cycle " << t << ": ";
        if (v.latchBubble) {
            std::cout << "encoded value latched into decode register "
                         "(no switch request)";
            decoder.latch(fifo);
        } else if (v.presented) {
            std::cout << "presents "
                      << static_cast<char>('A' + v.presented->packet -
                                           1);
            if (v.decodedByXor)
                std::cout << "  [register ^ FIFO head]";
            decoder.accept(fifo);
        } else {
            std::cout << "idle";
        }
        std::cout << '\n';
        if (!decoder.registerValid() && fifo.empty() &&
            next >= received.size())
            break;
    }
    std::cout << '\n';
}

} // namespace

int
main()
{
    using namespace nox;

    std::cout
        << "The paper's contention example: A arrives at cycle 0;\n"
        << "B and C arrive simultaneously at cycle 2; one output.\n\n";

    std::vector<WireFlit> nox_link;
    walk(RouterArch::NonSpeculative, nullptr);
    walk(RouterArch::SpecFast, nullptr);
    walk(RouterArch::SpecAccurate, nullptr);
    walk(RouterArch::Nox, &nox_link);
    decodeWalkthrough(nox_link);

    std::cout << "Note how the NoX link carries useful bits every "
                 "cycle (B^C is decoded\ndownstream), while the "
                 "speculative routers burn a cycle driving an\n"
                 "invalid value, and Spec-Fast loses another to a "
                 "dead reservation.\n";
    return 0;
}
