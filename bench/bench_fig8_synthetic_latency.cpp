/**
 * @file
 * Figure 8 — synthetic traffic latency.
 *
 * For every traffic pattern of §5.1 (seven deterministic/random
 * single-flit patterns plus the self-similar Pareto source), sweeps
 * offered load in MB/s/node and reports average packet latency in
 * nanoseconds for all four router architectures, exactly the axes of
 * the paper's Figure 8. After each pattern, the crossover points and
 * saturation throughputs are summarized; at the end the NoX
 * saturation-throughput gain (paper headline: up to 9.9%) is printed.
 *
 * Usage: bench_fig8_synthetic_latency [key=value...]
 *   patterns=uniform,transpose,...  quick=true  rates=...  seed=N
 *   breakdown=true   (adds per-(rate, arch) latency-attribution
 *                     tables from the provenance observer)
 */

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

struct PatternSummary
{
    std::map<RouterArch, double> saturationMBps;
};

PatternSummary
runPattern(PatternKind pattern, bool self_similar,
           const std::vector<RouterArch> &archs,
           const std::vector<double> &rates, const Config &config,
           std::vector<bench::PerfRecord> *perf)
{
    std::cout << "--- Figure 8: "
              << (self_similar ? "selfsimilar"
                               : patternName(pattern))
              << " traffic, average latency [ns] ---\n";

    std::vector<std::string> headers{"MB/s/node"};
    for (RouterArch a : archs)
        headers.push_back(archName(a));
    Table table(headers);

    // breakdown=true: run with latency provenance and append a
    // per-(rate, arch) attribution table (mean cycles per packet per
    // component — columns sum to the mean latency in cycles).
    const bool breakdown = config.getBool("breakdown", false);
    std::vector<std::string> bheaders{"MB/s/node", "arch"};
    for (std::size_t i = 0; i < kNumLatencyComponents; ++i)
        bheaders.push_back(
            latencyComponentName(static_cast<LatencyComponent>(i)));
    bheaders.push_back("total");
    Table btable(bheaders);

    PatternSummary summary;
    std::map<RouterArch, RunResult> last_ok;

    for (double rate : rates) {
        std::vector<std::string> row{Table::num(rate, 0)};
        for (RouterArch arch : archs) {
            SyntheticConfig c;
            c.arch = arch;
            c.pattern = pattern;
            c.selfSimilar = self_similar;
            c.injectionMBps = rate;
            bench::applyCommon(config, &c);
            c.obs.prov.enabled = breakdown;
            const RunResult r = runSynthetic(c);
            if (breakdown && !r.saturated &&
                r.breakdown.packets > 0) {
                const auto pkts =
                    static_cast<double>(r.breakdown.packets);
                std::vector<std::string> brow{Table::num(rate, 0),
                                              archName(arch)};
                for (std::size_t i = 0; i < kNumLatencyComponents;
                     ++i) {
                    brow.push_back(Table::num(
                        static_cast<double>(r.breakdown.comp[i]) /
                            pkts,
                        2));
                }
                brow.push_back(Table::num(
                    static_cast<double>(r.breakdown.totalCycles) /
                        pkts,
                    2));
                btable.addRow(std::move(brow));
            }
            perf->push_back(
                {std::string(self_similar ? "selfsimilar"
                                          : patternName(pattern)) +
                     "/" + archName(arch) + "/" +
                     Table::num(rate, 0),
                 r.wallSeconds, r.cyclesSimulated});
            if (r.saturated) {
                row.push_back("sat");
                if (!summary.saturationMBps.count(arch))
                    summary.saturationMBps[arch] = rate;
            } else {
                row.push_back(Table::num(r.avgLatencyNs, 2));
                last_ok[arch] = r;
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    bench::writeCsv(config, std::string("fig8_") +
                                (self_similar ? "selfsimilar"
                                              : patternName(pattern)),
                    table);
    if (breakdown) {
        std::cout << "\nlatency attribution [mean cycles/packet] "
                     "(components sum to the mean latency):\n";
        btable.print(std::cout);
        bench::writeCsv(config,
                        std::string("fig8_") +
                            (self_similar ? "selfsimilar"
                                          : patternName(pattern)) +
                            "_breakdown",
                        btable);
    }

    std::cout << "saturation throughput [MB/s/node]: ";
    for (RouterArch a : archs) {
        const double sat = summary.saturationMBps.count(a)
                               ? summary.saturationMBps[a]
                               : rates.back();
        std::cout << archName(a) << "="
                  << Table::num(sat, 0)
                  << (summary.saturationMBps.count(a) ? "" : "+")
                  << "  ";
        summary.saturationMBps[a] = sat;
    }
    std::cout << "\n\n";
    return summary;
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Figure 8: synthetic traffic latency vs injection bandwidth",
        config);

    const auto archs = bench::archsFrom(config);
    const auto rates = bench::ratesFrom(config);
    const auto patterns = bench::patternsFrom(config);

    double best_nox_gain = 0.0;
    const char *best_pattern = "";
    std::vector<bench::PerfRecord> perf;
    for (PatternKind p : patterns) {
        const auto s =
            runPattern(p, false, archs, rates, config, &perf);
        if (s.saturationMBps.count(RouterArch::Nox)) {
            double other = 0.0;
            for (const auto &[a, sat] : s.saturationMBps) {
                if (a != RouterArch::Nox)
                    other = std::max(other, sat);
            }
            if (other > 0.0) {
                const double gain =
                    s.saturationMBps.at(RouterArch::Nox) / other -
                    1.0;
                if (gain > best_nox_gain) {
                    best_nox_gain = gain;
                    best_pattern = patternName(p);
                }
            }
        }
    }
    // The paper's eighth pattern: self-similar Pareto traffic.
    runPattern(PatternKind::UniformRandom, true, archs, rates,
               config, &perf);

    std::cout << "NoX best saturation-throughput gain over the best "
                 "other architecture: "
              << Table::num(best_nox_gain * 100.0, 1) << "% ("
              << best_pattern << ")  [paper: up to 9.9%]\n";

    bench::writePerfJson(config, "fig8_synthetic_latency", perf);
    bench::warnUnused(config);
    return 0;
}
