/**
 * @file
 * NoX microarchitecture anatomy: how often the §2.6 arbitration
 * machinery actually operates in each mode, the distribution of
 * collision sizes the XOR switch resolves, abort frequency vs the
 * speculative routers' misspeculations, and how much traffic ends up
 * pre-scheduled ("performing similarly to an aggressively
 * speculative baseline when requests can be pre-scheduled").
 */

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "routers/nox_router.hpp"
#include "traffic/bernoulli_source.hpp"

namespace nox {
namespace {

struct AnatomyPoint
{
    NoxStats stats;
    EnergyEvents events;
    std::uint64_t specMisspecs = 0;
};

AnatomyPoint
measure(double mbps, int packet_flits, const Config &config)
{
    const Cycle warm = config.getUint("warmup", 5000);
    const Cycle run = config.getUint("measure", 20000);

    AnatomyPoint point;
    // NoX network.
    {
        NetworkParams params;
        auto net = makeNetwork(params, RouterArch::Nox);
        const DestinationPattern pattern(PatternKind::UniformRandom,
                                         net->mesh());
        const double fpc =
            mbpsToFlitsPerCycle(mbps, 0.7576);
        Rng seeder(7);
        for (NodeId n = 0; n < net->numNodes(); ++n) {
            net->addSource(std::make_unique<BernoulliSource>(
                n, pattern, fpc, packet_flits, seeder.next()));
        }
        net->run(warm + run);
        for (NodeId n = 0; n < net->numNodes(); ++n) {
            const auto &r =
                static_cast<const NoxRouter &>(net->router(n));
            const NoxStats &s = r.noxStats();
            for (std::size_t i = 0; i < s.collisionsBySize.size();
                 ++i)
                point.stats.collisionsBySize[i] +=
                    s.collisionsBySize[i];
            point.stats.recoveryCycles += s.recoveryCycles;
            point.stats.scheduledCycles += s.scheduledCycles;
            point.stats.lockedCycles += s.lockedCycles;
            point.stats.cleanTraversals += s.cleanTraversals;
            point.stats.prescheduled += s.prescheduled;
            point.stats.aborts += s.aborts;
        }
        point.events = net->totalEnergyEvents();
    }
    // Spec-Accurate reference for the misspeculation comparison.
    {
        NetworkParams params;
        auto net = makeNetwork(params, RouterArch::SpecAccurate);
        const DestinationPattern pattern(PatternKind::UniformRandom,
                                         net->mesh());
        const double fpc = mbpsToFlitsPerCycle(mbps, 0.7201);
        Rng seeder(7);
        for (NodeId n = 0; n < net->numNodes(); ++n) {
            net->addSource(std::make_unique<BernoulliSource>(
                n, pattern, fpc, packet_flits, seeder.next()));
        }
        net->run(warm + run);
        point.specMisspecs = net->totalEnergyEvents().misspecCycles;
    }
    return point;
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader("NoX anatomy: modes, collisions, aborts",
                       config);

    const std::vector<double> loads =
        config.has("rates") ? config.getDoubleList("rates")
                            : std::vector<double>{500, 1500, 2500};

    for (int flits : {1, 9}) {
        std::cout << "--- " << flits << "-flit packets ---\n";
        Table t({"MB/s/node", "clean", "coll2", "coll3", "coll4+",
                 "aborts", "presched", "spec-misspec",
                 "recovery%", "scheduled%", "locked%"});
        for (double mbps : loads) {
            const AnatomyPoint p = measure(mbps, flits, config);
            const double mode_total = static_cast<double>(
                p.stats.recoveryCycles + p.stats.scheduledCycles +
                p.stats.lockedCycles);
            const std::uint64_t coll4plus =
                p.stats.collisionsBySize[4] +
                p.stats.collisionsBySize[5];
            t.addRow(
                {Table::num(mbps, 0),
                 std::to_string(p.stats.cleanTraversals),
                 std::to_string(p.stats.collisionsBySize[2]),
                 std::to_string(p.stats.collisionsBySize[3]),
                 std::to_string(coll4plus),
                 std::to_string(p.stats.aborts),
                 std::to_string(p.stats.prescheduled),
                 std::to_string(p.specMisspecs),
                 Table::num(100.0 * p.stats.recoveryCycles /
                                mode_total, 1),
                 Table::num(100.0 * p.stats.scheduledCycles /
                                mode_total, 1),
                 Table::num(100.0 * p.stats.lockedCycles /
                                mode_total, 1)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "(aborts should be far rarer than the speculative "
                 "router's misspeculations — §2.7)\n";

    bench::warnUnused(config);
    return 0;
}
