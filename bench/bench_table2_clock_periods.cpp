/**
 * @file
 * Table 2 — router clock periods, with the §6.1 critical-path
 * breakdown (248 ps SRAM read, 98 ps 2 mm link, ~40 ps NoX decode
 * overhead) and the relative frequency improvements.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "power/timing_model.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader("Table 2: router clock periods", config);

    const Technology tech = Technology::tsmc65();
    PhysicalParams phys;
    phys.bufferDepth =
        static_cast<int>(config.getInt("buffer_depth", 4));
    phys.linkLengthMm = config.getDouble("link_mm", 2.0);
    const TimingModel tm(tech, phys);

    Table table({"Architecture", "Clock Period"});
    for (RouterArch arch : kAllArchs) {
        table.addRow({archName(arch),
                      Table::num(tm.clockPeriodNs(arch), 2) + " ns"});
    }
    table.print(std::cout);

    std::cout << "\n--- critical-path breakdown [ps] ---\n";
    for (RouterArch arch : kAllArchs) {
        const TimingBreakdown b = tm.breakdown(arch);
        std::cout << archName(arch) << ": ";
        for (std::size_t i = 0; i < b.components.size(); ++i) {
            std::cout << b.components[i].name << "="
                      << Table::num(b.components[i].delayPs, 1)
                      << (i + 1 == b.components.size() ? "" : " + ");
        }
        std::cout << "  = " << Table::num(b.totalPs, 1) << " ps\n";
    }

    const double base = tm.clockPeriodNs(RouterArch::NonSpeculative);
    std::cout << "\nfrequency vs non-speculative [paper: 33.3%, "
                 "27.8%, 21.1% faster]:\n";
    for (RouterArch arch : {RouterArch::SpecFast,
                            RouterArch::SpecAccurate,
                            RouterArch::Nox}) {
        std::cout << "  " << archName(arch) << ": +"
                  << Table::num(
                         (base / tm.clockPeriodNs(arch) - 1.0) * 100,
                         1)
                  << "%\n";
    }
    std::cout << "NoX decode overhead vs Spec-Accurate: "
              << Table::num((tm.clockPeriodNs(RouterArch::Nox) -
                             tm.clockPeriodNs(
                                 RouterArch::SpecAccurate)) *
                                1000.0,
                            1)
              << " ps  [paper: ~40 ps]\n";

    bench::warnUnused(config);
    return 0;
}
