/**
 * @file
 * §2.8: virtual channels vs multiple physical networks.
 *
 * "Multiple works have highlighted using multiple physical channels
 * as a potentially more power efficient alternative to conventional
 * virtual channel routers [1, 17, 27, 29]."
 *
 * Compares the paper's configuration — two physical 64-bit wormhole
 * networks (request + reply) of non-speculative routers — against a
 * single physical network whose non-speculative routers carry two
 * virtual channels (same per-class buffering: 4 flits/VC). Both are
 * driven by the same coherence trace. Reported: per-class latency,
 * energy per packet, and power, quantifying the §2.8 trade-off:
 * the VC network halves link/crossbar hardware but serializes both
 * classes over one link; the physical pair burns more idle clock
 * but isolates classes completely.
 */

#include <iostream>

#include "bench_util.hpp"
#include "coherence/trace_generator.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"
#include "power/energy_model.hpp"
#include "power/timing_model.hpp"
#include "routers/factory.hpp"
#include "traffic/replay_source.hpp"

namespace nox {
namespace {

struct Outcome
{
    double reqLatNs = 0.0;
    double repLatNs = 0.0;
    double netLatNs = 0.0;
    double energyPerPacketPj = 0.0;
    double powerW = 0.0;
    bool drained = true;
};

/** The paper's two-physical-network configuration. */
Outcome
runPhysicalPair(const Trace &trace, double period_ns,
                const EnergyModel &energy)
{
    Outcome out;
    EnergyEvents events;
    Cycle span = 0;
    SampleStats all;
    std::uint64_t packets = 0;
    for (std::uint8_t netid : {std::uint8_t{0}, std::uint8_t{1}}) {
        NetworkParams params;
        auto net =
            makeNetwork(params, RouterArch::NonSpeculative);
        auto src = std::make_unique<ReplaySource>(
            trace.forNetwork(netid), period_ns);
        ReplaySource *replay = src.get();
        net->addSource(std::move(src));
        Cycle guard = 0;
        while ((!replay->done() || net->packetsInFlight() > 0) &&
               guard++ < 4000000) {
            net->step();
        }
        out.drained &= (net->packetsInFlight() == 0);
        (netid == 0 ? out.reqLatNs : out.repLatNs) =
            net->stats().latency.mean() * period_ns;
        all.merge(net->stats().netLatency);
        packets += net->stats().packetsEjected;
        events.merge(net->totalEnergyEvents());
        span = std::max(span, net->now());
    }
    out.netLatNs = all.mean() * period_ns;
    out.energyPerPacketPj =
        energy.energyOf(events).totalPj() /
        static_cast<double>(packets);
    out.powerW = energy.powerW(events, period_ns, span);
    return out;
}

/** One physical network, two virtual channels. */
Outcome
runVcNetwork(const Trace &trace, double period_ns,
             const EnergyModel &energy)
{
    NetworkParams params;
    params.router.vcCount = 2;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);

    // Merge both trace classes onto the single network; injectPacket
    // maps Reply to VC1.
    std::vector<TraceRecord> all = trace.records;
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.timeNs < b.timeNs;
                     });
    auto src =
        std::make_unique<ReplaySource>(std::move(all), period_ns);
    ReplaySource *replay = src.get();
    net->addSource(std::move(src));

    Outcome out;
    Cycle guard = 0;
    while ((!replay->done() || net->packetsInFlight() > 0) &&
           guard++ < 4000000) {
        net->step();
    }
    out.drained = (net->packetsInFlight() == 0);
    const NetworkStats &s = net->stats();
    out.reqLatNs =
        s.latencyByClass[static_cast<int>(TrafficClass::Request)]
            .mean() *
        period_ns;
    out.repLatNs =
        s.latencyByClass[static_cast<int>(TrafficClass::Reply)]
            .mean() *
        period_ns;
    out.netLatNs = s.netLatency.mean() * period_ns;
    const EnergyEvents events = net->totalEnergyEvents();
    out.energyPerPacketPj =
        energy.energyOf(events).totalPj() /
        static_cast<double>(s.packetsEjected);
    out.powerW = energy.powerW(events, period_ns, net->now());
    return out;
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "§2.8: two physical networks vs one 2-VC network "
        "(non-speculative routers)",
        config);

    const bool quick = config.getBool("quick", false);
    const double horizon =
        config.getDouble("horizon_ns", quick ? 8000.0 : 20000.0);
    const double warmup =
        config.getDouble("trace_warmup_ns", quick ? 20000.0 : 50000.0);

    const Technology tech = Technology::tsmc65();
    const PhysicalParams phys;
    const TimingModel tm(tech, phys);
    const double period =
        tm.clockPeriodNs(RouterArch::NonSpeculative);
    const EnergyModel energy(tech, RouterArch::NonSpeculative, phys);

    // Per-class columns are total latency (including source-queue
    // time): the honest signal when one class saturates its channel.
    Table t({"workload", "config", "req total [ns]",
             "reply total [ns]", "all net [ns]", "E/pkt [pJ]",
             "power [W]"});

    CmpParams params;
    for (const auto &name : bench::workloadsFrom(config)) {
        CoherenceTraceGenerator gen(params, findWorkload(name), 99);
        const Trace trace = gen.generate(horizon, warmup);

        const Outcome phys_pair =
            runPhysicalPair(trace, period, energy);
        const Outcome vc = runVcNetwork(trace, period, energy);

        t.addRow({name, "2 physical",
                  Table::num(phys_pair.reqLatNs, 2),
                  Table::num(phys_pair.repLatNs, 2),
                  Table::num(phys_pair.netLatNs, 2),
                  Table::num(phys_pair.energyPerPacketPj, 1),
                  Table::num(phys_pair.powerW, 3)});
        t.addRow({name, "1 net, 2 VCs", Table::num(vc.reqLatNs, 2),
                  Table::num(vc.repLatNs, 2),
                  Table::num(vc.netLatNs, 2),
                  Table::num(vc.energyPerPacketPj, 1),
                  Table::num(vc.powerW, 3)});
    }
    t.print(std::cout);
    bench::writeCsv(config, "vc_vs_physical", t);

    std::cout << "\n(the physical pair isolates classes completely "
                 "and spreads load over twice the links; the VC "
                 "network halves the wire/switch hardware but time-"
                 "multiplexes one link — §2.8's trade-off)\n";

    bench::warnUnused(config);
    return 0;
}
