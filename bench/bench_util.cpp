#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/log.hpp"
#include "common/table.hpp"

namespace nox {
namespace bench {

std::vector<double>
defaultRates(bool quick)
{
    if (quick) {
        return {200, 575, 1000, 1500, 2000, 2500, 2775, 3100, 3400};
    }
    return {100,  200,  400,  575,  750,  1000, 1250, 1500, 1750,
            2000, 2250, 2500, 2775, 3000, 3200, 3400, 3600};
}

std::vector<PatternKind>
patternsFrom(const Config &config)
{
    const auto names = config.getStringList("patterns");
    std::vector<PatternKind> out;
    if (names.empty()) {
        out.assign(std::begin(kAllPatterns), std::end(kAllPatterns));
        return out;
    }
    for (const auto &n : names)
        out.push_back(parsePattern(n));
    return out;
}

std::vector<RouterArch>
archsFrom(const Config &config)
{
    const auto names = config.getStringList("archs");
    std::vector<RouterArch> out;
    if (names.empty()) {
        out.assign(std::begin(kAllArchs), std::end(kAllArchs));
        return out;
    }
    for (const auto &n : names)
        out.push_back(parseArch(n.c_str()));
    return out;
}

std::vector<std::string>
workloadsFrom(const Config &config)
{
    auto names = config.getStringList("workloads");
    if (!names.empty())
        return names;
    return {"barnes",  "fft",     "lu",   "ocean", "radix",
            "water",   "apache",  "specjbb", "specweb", "tpcc"};
}

void
applyCommon(const Config &config, SyntheticConfig *synth)
{
    synth->warmupCycles =
        config.getUint("warmup", synth->warmupCycles);
    synth->measureCycles =
        config.getUint("measure", synth->measureCycles);
    synth->drainLimitCycles =
        config.getUint("drain_limit", synth->drainLimitCycles);
    synth->seed = config.getUint("seed", synth->seed);
    synth->width = static_cast<int>(config.getInt("width", 8));
    synth->height = static_cast<int>(config.getInt("height", 8));
    const std::string sched = config.getString("scheduling");
    if (!sched.empty())
        synth->schedulingMode = parseSchedulingMode(sched.c_str());
}

std::vector<double>
ratesFrom(const Config &config)
{
    auto rates = config.getDoubleList("rates");
    if (!rates.empty())
        return rates;
    return defaultRates(config.getBool("quick", false));
}

void
printHeader(const std::string &title, const Config &config)
{
    std::cout << "==============================================\n";
    std::cout << title << '\n';
    std::cout << "==============================================\n";
    const auto items = config.items();
    if (!items.empty()) {
        std::cout << "config:";
        for (const auto &[k, v] : items)
            std::cout << ' ' << k << '=' << v;
        std::cout << '\n';
    }
    std::cout << '\n';
}

void
writeCsv(const Config &config, const std::string &name,
         const Table &table)
{
    const std::string dir = config.getString("csv_dir");
    if (dir.empty())
        return;
    const std::string path = dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write ", path);
        return;
    }
    table.printCsv(out);
    std::cout << "[csv] " << path << '\n';
}

void
finishRecordStats(PerfRecord *record,
                  const std::vector<double> &wallSamples)
{
    if (wallSamples.empty())
        return;
    double best = wallSamples.front();
    double sum = 0.0;
    for (double w : wallSamples) {
        best = std::min(best, w);
        sum += w;
    }
    const double n = static_cast<double>(wallSamples.size());
    const double mean = sum / n;
    double var = 0.0;
    for (double w : wallSamples)
        var += (w - mean) * (w - mean);
    // Sample stddev (n-1); zero for a single rep.
    const double stddev =
        wallSamples.size() > 1 ? std::sqrt(var / (n - 1.0)) : 0.0;
    record->wallSeconds = best;
    record->reps = static_cast<int>(wallSamples.size());
    record->meanWallSeconds = mean;
    record->stddevWallSeconds = stddev;
}

void
recordProfile(PerfRecord *record, const RunResult &result)
{
    if (!result.profiled)
        return;
    record->profiled = true;
    record->phaseSeconds = result.phaseSeconds;
    record->profileCoverage = result.profileCoverage;
}

namespace {

std::string
readFirstLine(const char *path)
{
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line))
        return line;
    return "";
}

} // namespace

const HostFingerprint &
hostFingerprint()
{
    static const HostFingerprint fp = [] {
        HostFingerprint h;
        h.cores = static_cast<int>(
            std::thread::hardware_concurrency());
        std::ifstream cpuinfo("/proc/cpuinfo");
        std::string line;
        while (cpuinfo && std::getline(cpuinfo, line)) {
            if (line.compare(0, 10, "model name") != 0)
                continue;
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::size_t b = colon + 1;
                while (b < line.size() && line[b] == ' ')
                    ++b;
                h.cpu = line.substr(b);
            }
            break;
        }
        const std::string gov = readFirstLine(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
        if (!gov.empty())
            h.governor = gov;
        return h;
    }();
    return fp;
}

namespace {

/** Minimal JSON string escape (quotes/backslashes in CPU names). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writePerfJson(const Config &config, const std::string &bench,
              const std::vector<PerfRecord> &records)
{
    const std::string path = config.getString("perf_json");
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out) {
        warn("cannot write ", path);
        return;
    }
    const HostFingerprint &host = hostFingerprint();
    out << "{\n  \"bench\": \"" << bench << "\",\n"
        << "  \"host\": {\"cpu\": \"" << jsonEscape(host.cpu)
        << "\", \"cores\": " << host.cores << ", \"governor\": \""
        << jsonEscape(host.governor) << "\"},\n"
        << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const PerfRecord &r = records[i];
        const double cps =
            r.wallSeconds > 0.0
                ? static_cast<double>(r.cycles) / r.wallSeconds
                : 0.0;
        out << "    {\"label\": \"" << r.label << "\", \"wall_s\": "
            << r.wallSeconds << ", \"cycles\": " << r.cycles
            << ", \"cycles_per_s\": " << cps;
        if (r.flitHops > 0) {
            const double hps =
                r.wallSeconds > 0.0
                    ? static_cast<double>(r.flitHops) / r.wallSeconds
                    : 0.0;
            out << ", \"flit_hops\": " << r.flitHops
                << ", \"flit_hops_per_s\": " << hps;
        }
        if (r.reps > 0) {
            out << ", \"reps\": " << r.reps
                << ", \"mean_wall_s\": " << r.meanWallSeconds
                << ", \"stddev_wall_s\": " << r.stddevWallSeconds;
        }
        if (r.profiled) {
            out << ", \"profile_coverage\": " << r.profileCoverage
                << ", \"phases\": {";
            for (std::size_t p = 0; p < kNumSimPhases; ++p) {
                out << (p ? ", " : "") << "\""
                    << simPhaseName(static_cast<SimPhase>(p))
                    << "\": " << r.phaseSeconds[p];
            }
            out << "}";
        }
        out << "}" << (i + 1 < records.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    std::cout << "[perf] " << path << '\n';
}

void
warnUnused(const Config &config)
{
    for (const auto &key : config.unusedKeys())
        warn("unused config key: ", key);
}

} // namespace bench
} // namespace nox
