/**
 * @file
 * Figure 11 — application energy-delay^2 and the paper's headline
 * percentages.
 *
 * The paper: "On average the NoX architecture outperforms the
 * non-speculative, Spec-Fast, and Spec-Accurate by 29.5%, 34.4%, and
 * 2.7% respectively on an energy-delay^2 basis." This bench prints
 * the same comparison for the reproduced workloads.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "coherence/trace_generator.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Figure 11: application energy-delay^2 performance", config);

    CmpParams params;
    const bool quick = config.getBool("quick", false);
    const double horizon =
        config.getDouble("horizon_ns", quick ? 8000.0 : 25000.0);
    const double warmup =
        config.getDouble("trace_warmup_ns", quick ? 20000.0 : 50000.0);
    const std::uint64_t seed = config.getUint("seed", 99);

    const auto archs = bench::archsFrom(config);
    std::vector<std::string> headers{"workload"};
    for (RouterArch a : archs) {
        headers.push_back(std::string(archName(a)) + " ED2");
    }
    headers.push_back("NoX E/pkt[pJ]");
    Table table(headers);

    // Geometric-mean ratios vs NoX across workloads.
    std::map<RouterArch, double> log_ratio_sum;
    int workload_count = 0;

    for (const auto &name : bench::workloadsFrom(config)) {
        CoherenceTraceGenerator gen(params, findWorkload(name), seed);
        const Trace trace = gen.generate(horizon, warmup);

        std::map<RouterArch, AppResult> results;
        for (RouterArch arch : archs) {
            AppConfig c;
            c.arch = arch;
            results[arch] = runApplication(c, trace);
        }

        std::vector<std::string> row{name};
        for (RouterArch a : archs)
            row.push_back(Table::num(results[a].ed2, 0));
        row.push_back(
            Table::num(results.count(RouterArch::Nox)
                           ? results[RouterArch::Nox].energyPerPacketPj
                           : 0.0,
                       1));
        table.addRow(std::move(row));

        if (results.count(RouterArch::Nox)) {
            const double nox_ed2 = results[RouterArch::Nox].ed2;
            for (RouterArch a : archs) {
                if (a != RouterArch::Nox && nox_ed2 > 0.0)
                    log_ratio_sum[a] +=
                        std::log(results[a].ed2 / nox_ed2);
            }
            ++workload_count;
        }
    }

    std::cout << "--- Figure 11: average packet ED^2 [pJ*ns^2] ---\n";
    table.print(std::cout);
    bench::writeCsv(config, "fig11_app_ed2", table);

    if (workload_count > 0) {
        std::cout << "\nNoX ED^2 advantage (geomean, positive = NoX "
                     "better):\n";
        const std::map<RouterArch, double> paper{
            {RouterArch::NonSpeculative, 29.5},
            {RouterArch::SpecFast, 34.4},
            {RouterArch::SpecAccurate, 2.7}};
        for (RouterArch a : archs) {
            if (a == RouterArch::Nox)
                continue;
            const double ratio =
                std::exp(log_ratio_sum[a] / workload_count);
            std::cout << "  vs " << archName(a) << ": "
                      << Table::num((ratio - 1.0) * 100.0, 1) << "%";
            if (paper.count(a)) {
                std::cout << "   [paper: " << paper.at(a) << "%]";
            }
            std::cout << '\n';
        }
    }

    bench::warnUnused(config);
    return 0;
}
