/**
 * @file
 * Scheduling-kernel speedup — always-tick vs activity-driven.
 *
 * For each router architecture, runs the same seeded uniform-random
 * measurement point under both scheduling kernels and reports host
 * wall-clock time, simulated cycles per second, and the speedup of
 * the activity-driven kernel. At low load most of the mesh is idle
 * most cycles, so clock gating the quiescent routers should win
 * substantially (target: >=3x at 0.05 flits/node/cycle); near
 * saturation everything is busy and the kernels should be on par.
 *
 * Both kernels must agree exactly on the simulation results — any
 * mismatch is reported and fails the bench.
 *
 * Usage: bench_sched_speedup [key=value...]
 *   loads=0.05,0.30   archs=nox,...   warmup=N measure=N seed=N
 *   perf_json=out.json   csv_dir=DIR
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

/** Offered loads in flits/node/cycle (the kernel-relevant axis). */
std::vector<double>
loadsFrom(const Config &config)
{
    auto loads = config.getDoubleList("loads");
    if (!loads.empty())
        return loads;
    return {0.05, 0.30};
}

bool
resultsAgree(const RunResult &a, const RunResult &b)
{
    return a.packetsMeasured == b.packetsMeasured &&
           a.avgLatencyCycles == b.avgLatencyCycles &&
           a.acceptedFlitsPerCycle == b.acceptedFlitsPerCycle &&
           a.maxSourceQueueFlits == b.maxSourceQueueFlits &&
           a.saturated == b.saturated && a.drained == b.drained;
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Scheduling kernel: activity-driven speedup over always-tick",
        config);

    const auto archs = bench::archsFrom(config);
    const auto loads = loadsFrom(config);

    Table table({"arch", "load[f/n/c]", "tick[s]", "activity[s]",
                 "tick[Mc/s]", "activity[Mc/s]", "speedup",
                 "match"});
    std::vector<bench::PerfRecord> perf;
    bool all_match = true;
    double low_load_speedup = 0.0;

    for (RouterArch arch : archs) {
        for (double load : loads) {
            SyntheticConfig c;
            c.arch = arch;
            c.pattern = PatternKind::UniformRandom;
            bench::applyCommon(config, &c);

            // The config axis is flits/node/cycle; convert through
            // the architecture's clock so every router sees the same
            // cycle-domain load.
            const TimingModel timing(c.tech, c.phys);
            c.injectionMBps = flitsPerCycleToMbps(
                load, timing.clockPeriodNs(arch));

            c.schedulingMode = SchedulingMode::AlwaysTick;
            const RunResult tick = runSynthetic(c);
            c.schedulingMode = SchedulingMode::ActivityDriven;
            const RunResult act = runSynthetic(c);

            const bool match = resultsAgree(tick, act);
            all_match = all_match && match;
            const double speedup =
                act.wallSeconds > 0.0
                    ? tick.wallSeconds / act.wallSeconds
                    : 0.0;
            if (load <= 0.10)
                low_load_speedup =
                    std::max(low_load_speedup, speedup);

            table.addRow({archName(arch), Table::num(load, 2),
                          Table::num(tick.wallSeconds, 3),
                          Table::num(act.wallSeconds, 3),
                          Table::num(tick.cyclesPerSecond() / 1e6, 1),
                          Table::num(act.cyclesPerSecond() / 1e6, 1),
                          Table::num(speedup, 2),
                          match ? "yes" : "MISMATCH"});

            const std::string point =
                std::string(archName(arch)) + "/" +
                Table::num(load, 2);
            perf.push_back({point + "/alwaystick", tick.wallSeconds,
                            tick.cyclesSimulated});
            perf.push_back({point + "/activity", act.wallSeconds,
                            act.cyclesSimulated});
        }
    }

    table.print(std::cout);
    bench::writeCsv(config, "sched_speedup", table);
    bench::writePerfJson(config, "sched_speedup", perf);

    std::cout << "\nbest low-load speedup: "
              << Table::num(low_load_speedup, 2)
              << "x  [target: >=3x at 0.05 flits/node/cycle]\n";
    if (!all_match) {
        std::cout << "ERROR: scheduling kernels disagree on "
                     "simulation results\n";
        return 1;
    }

    bench::warnUnused(config);
    return 0;
}
