/**
 * @file
 * §8 future work: the NoX on higher-radix topologies.
 *
 * "In future work, we look to evaluate the NoX architecture on
 * alternative, higher radix, topologies [1] which may derive more
 * benefit given their higher arbitration latencies, their longer
 * channels, and the fixed cost of the NoX decoding hardware."
 *
 * This bench compares 64 terminals organized as the paper's 8x8 mesh
 * (radix-5 routers, 2 mm channels) against a 4x4 concentrated mesh
 * with 4 terminals per radix-8 router (4 mm channels, same die), at
 * matched per-terminal load. Reported: per-architecture clock
 * periods (the NoX clock penalty vs Spec-Accurate shrinks as the
 * arbiter and channel grow while decode stays ~40 ps), latencies,
 * and the NoX-vs-best-rival gap on both topologies.
 */

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "power/timing_model.hpp"

namespace nox {
namespace {

SyntheticConfig
configFor(bool cmesh, RouterArch arch, double mbps,
          const Config &config)
{
    SyntheticConfig c;
    c.arch = arch;
    c.pattern = PatternKind::UniformRandom;
    c.injectionMBps = mbps;
    if (cmesh) {
        c.width = 4;
        c.height = 4;
        c.concentration = 4;
    }
    bench::applyCommon(config, &c);
    if (cmesh) { // applyCommon may override width/height from CLI
        c.width = 4;
        c.height = 4;
    }
    return c;
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "§8 future work: NoX on a higher-radix concentrated mesh",
        config);

    // Clock periods on both physical configurations.
    const Technology tech = Technology::tsmc65();
    PhysicalParams mesh_phys;
    PhysicalParams cmesh_phys;
    cmesh_phys.ports = meshRadix(4);
    cmesh_phys.linkLengthMm = 4.0;
    const TimingModel mesh_tm(tech, mesh_phys);
    const TimingModel cmesh_tm(tech, cmesh_phys);

    Table periods({"Architecture", "8x8 mesh (radix 5)",
                   "4x4 CMesh-4 (radix 8)", "NoX penalty"});
    for (RouterArch arch : kAllArchs) {
        periods.addRow(
            {archName(arch),
             Table::num(mesh_tm.clockPeriodNs(arch), 3) + " ns",
             Table::num(cmesh_tm.clockPeriodNs(arch), 3) + " ns",
             ""});
    }
    periods.addRow(
        {"NoX vs Spec-Accurate",
         Table::num((mesh_tm.clockPeriodNs(RouterArch::Nox) /
                         mesh_tm.clockPeriodNs(
                             RouterArch::SpecAccurate) -
                     1.0) *
                        100.0,
                    1) + " %",
         Table::num((cmesh_tm.clockPeriodNs(RouterArch::Nox) /
                         cmesh_tm.clockPeriodNs(
                             RouterArch::SpecAccurate) -
                     1.0) *
                        100.0,
                    1) + " %",
         "fixed ~40 ps decode"});
    periods.print(std::cout);
    std::cout << '\n';

    const std::vector<double> loads =
        config.has("rates")
            ? config.getDoubleList("rates")
            : std::vector<double>{300, 500, 800, 1100, 1400, 1800};

    for (bool cmesh : {false, true}) {
        std::cout << "--- "
                  << (cmesh ? "4x4 CMesh-4 (64 terminals, radix 8)"
                            : "8x8 mesh (64 terminals, radix 5)")
                  << ", uniform latency [ns] ---\n";
        Table t({"MB/s/node", "NonSpec", "Spec-Fast",
                 "Spec-Accurate", "NoX", "NoX vs best rival"});
        for (double mbps : loads) {
            std::vector<std::string> row{Table::num(mbps, 0)};
            std::map<RouterArch, RunResult> results;
            double best_rival = 1e300;
            for (RouterArch arch : kAllArchs) {
                results[arch] =
                    runSynthetic(configFor(cmesh, arch, mbps, config));
                const RunResult &r = results[arch];
                row.push_back(r.saturated
                                  ? "sat"
                                  : Table::num(r.avgLatencyNs, 2));
                if (arch != RouterArch::Nox && !r.saturated)
                    best_rival =
                        std::min(best_rival, r.avgLatencyNs);
            }
            const RunResult &noxr = results[RouterArch::Nox];
            if (!noxr.saturated && best_rival < 1e300) {
                row.push_back(Table::num(
                    (noxr.avgLatencyNs / best_rival - 1.0) * 100.0,
                    1) + " %");
            } else {
                row.push_back("-");
            }
            t.addRow(std::move(row));
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "(a shrinking/negative 'NoX vs best rival' column on "
                 "the CMesh confirms §8's hypothesis)\n";

    bench::warnUnused(config);
    return 0;
}
