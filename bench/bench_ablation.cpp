/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *   1. Arbiter flavour (round-robin / fixed-priority / matrix) in the
 *      NoX output arbitration — §2.2 claims decode order preserves
 *      "any fairness or prioritization mechanisms".
 *   2. Input buffer depth — Table 1 uses 4 entries, "the minimal
 *      necessary to cover the round trip credit loop".
 *   3. The NoX multi-flit abort policy's cost: single-flit versus
 *      9-flit packets at matched byte load.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

RunResult
runWith(const Config &config, RouterArch arch, double mbps,
        ArbiterKind arb, int depth, int flits)
{
    SyntheticConfig c;
    c.arch = arch;
    c.pattern = PatternKind::UniformRandom;
    c.injectionMBps = mbps;
    c.packetFlits = flits;
    c.bufferDepth = depth;
    c.sinkBufferDepth = depth;
    c.arbiterKind = arb;
    bench::applyCommon(config, &c);
    return runSynthetic(c);
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader("Ablations: arbiter, buffer depth, packet size",
                       config);

    const std::vector<double> loads =
        config.has("rates") ? config.getDoubleList("rates")
                            : std::vector<double>{1000, 2000, 2600};

    // --- 1. arbiter flavour in the NoX output arbitration ---
    std::cout << "--- arbiter ablation (NoX, uniform, latency ns) "
                 "---\n";
    Table arb_table({"load MB/s", "round-robin", "fixed-priority",
                     "matrix (LRS)"});
    for (double mbps : loads) {
        std::vector<std::string> row{Table::num(mbps, 0)};
        for (ArbiterKind k :
             {ArbiterKind::RoundRobin, ArbiterKind::FixedPriority,
              ArbiterKind::Matrix}) {
            const RunResult r =
                runWith(config, RouterArch::Nox, mbps, k, 4, 1);
            row.push_back(r.saturated ? "sat"
                                      : Table::num(r.avgLatencyNs, 2));
        }
        arb_table.addRow(std::move(row));
    }
    arb_table.print(std::cout);
    std::cout << '\n';

    // --- 2. buffer depth (NoX vs Spec-Accurate) ---
    std::cout << "--- buffer depth ablation (uniform, latency ns; "
                 "'sat' = saturated) ---\n";
    Table depth_table({"depth", "load MB/s", "Spec-Accurate", "NoX"});
    for (int depth : {2, 4, 8}) {
        for (double mbps : loads) {
            std::vector<std::string> row{std::to_string(depth),
                                         Table::num(mbps, 0)};
            for (RouterArch a :
                 {RouterArch::SpecAccurate, RouterArch::Nox}) {
                const RunResult r = runWith(
                    config, a, mbps, ArbiterKind::RoundRobin, depth,
                    1);
                row.push_back(r.saturated
                                  ? "sat"
                                  : Table::num(r.avgLatencyNs, 2));
            }
            depth_table.addRow(std::move(row));
        }
    }
    depth_table.print(std::cout);

    // --- 3. packet size at matched byte load ---
    std::cout << "\n--- packet-size ablation (uniform, matched "
                 "MB/s/node) ---\n";
    Table size_table(
        {"flits/packet", "load MB/s", "NonSpec", "Spec-Fast",
         "Spec-Accurate", "NoX"});
    for (int flits : {1, 9}) {
        for (double mbps : loads) {
            std::vector<std::string> row{std::to_string(flits),
                                         Table::num(mbps, 0)};
            for (RouterArch a : kAllArchs) {
                const RunResult r = runWith(
                    config, a, mbps, ArbiterKind::RoundRobin, 4,
                    flits);
                row.push_back(r.saturated
                                  ? "sat"
                                  : Table::num(r.avgLatencyNs, 2));
            }
            size_table.addRow(std::move(row));
        }
    }
    size_table.print(std::cout);
    std::cout << "\n(single-flit traffic is where the XOR-coded "
                 "crossbar pays off; multi-flit collisions abort as "
                 "in §2.7)\n";

    // --- 4. §2.7's alternative: packet fragmentation ---
    // "routing information could be appended each packet and no
    // additional architecture modification would be necessary."
    // Model a fragmented NoX: every 72B data packet travels as
    // independently-routed single-flit packets, which all code
    // through the XOR switch (no aborts) but pay a per-flit header —
    // 6B payload per 8B flit, i.e. 12 flits instead of 9 (+33%
    // bandwidth). Compare against the contiguous-wormhole NoX the
    // paper chose, at equal *payload* load.
    std::cout << "\n--- §2.7 alternative: fragmented vs contiguous "
                 "multi-flit NoX (uniform, 72B payloads) ---\n";
    Table frag_table({"payload MB/s", "contiguous 9-flit [ns]",
                      "fragment flit [ns]", "72B reassembled [ns]",
                      "contiguous aborts", "fragmented aborts"});
    for (double mbps : loads) {
        SyntheticConfig contig;
        contig.arch = RouterArch::Nox;
        contig.pattern = PatternKind::UniformRandom;
        contig.injectionMBps = mbps;
        contig.packetFlits = 9;
        bench::applyCommon(config, &contig);
        const RunResult rc = runSynthetic(contig);

        SyntheticConfig frag = contig;
        frag.packetFlits = 1;
        // Same payload rate, 12/9 more raw flits for headers.
        frag.injectionMBps = mbps * 12.0 / 9.0;
        const RunResult rf = runSynthetic(frag);

        // A 72B payload is whole when its 12th fragment lands: about
        // 11 extra serialization cycles beyond one fragment's latency.
        const double reassembled =
            rf.avgLatencyNs + 11.0 * rf.periodNs;
        frag_table.addRow(
            {Table::num(mbps, 0),
             rc.saturated ? "sat" : Table::num(rc.avgLatencyNs, 2),
             rf.saturated ? "sat" : Table::num(rf.avgLatencyNs, 2),
             rf.saturated ? "sat" : Table::num(reassembled, 2),
             std::to_string(rc.abortCycles),
             std::to_string(rf.abortCycles)});
    }
    frag_table.print(std::cout);
    std::cout << "(fragmentation removes aborts but pays header "
                 "bandwidth and per-flit latency; the paper keeps "
                 "contiguous wormhole transmission)\n";

    bench::warnUnused(config);
    return 0;
}
