/**
 * @file
 * Observability-overhead microbenchmark.
 *
 * The PR 3 contract is that observers are *free when off* (a null
 * pointer behind an `if`) and cheap when on. This bench quantifies
 * both halves: it runs the same synthetic point with every
 * observability subsystem off, then with tracing, metrics sampling,
 * and latency provenance individually and all together, and reports
 * wall-clock seconds, simulated cycles/second, and the relative
 * slowdown versus the baseline. No export files are written during
 * the timed region (exports happen in finishObservability, outside
 * the runner's wall-clock window), so the numbers isolate the hot-path
 * recording cost.
 *
 * Usage: bench_obs_overhead [key=value...]
 *   arch=nox rate_mbps=1200 warmup=N measure=N seed=N repeats=3
 *   perf_json=<path>   (PerfRecord JSON; the checked-in baseline is
 *                       bench/baselines/BENCH_obs_overhead.json)
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

struct Variant
{
    const char *name;
    bool trace = false;
    bool metrics = false;
    bool provenance = false;
};

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Observability overhead: tracing / metrics / provenance "
        "on-vs-off",
        config);

    const RouterArch arch =
        parseArch(config.getString("arch", "nox").c_str());
    const double rate = config.getDouble("rate_mbps", 1200.0);
    const int repeats =
        static_cast<int>(config.getInt("repeats", 3));

    const Variant variants[] = {
        {"off", false, false, false},
        {"trace", true, false, false},
        {"metrics", false, true, false},
        {"provenance", false, false, true},
        {"all", true, true, true},
    };

    Table t({"observers", "wall_s", "cycles/s", "slowdown"});
    std::vector<bench::PerfRecord> perf;
    double baseline_cps = 0.0;
    for (const Variant &v : variants) {
        // Best-of-N wall clock: the minimum is the least-noisy
        // estimator of the true cost on a shared machine.
        double best_wall = 0.0;
        std::uint64_t cycles = 0;
        for (int i = 0; i < repeats; ++i) {
            SyntheticConfig c;
            c.arch = arch;
            c.pattern = PatternKind::UniformRandom;
            c.injectionMBps = rate;
            bench::applyCommon(config, &c);
            c.obs.trace.enabled = v.trace;
            c.obs.metrics.enabled = v.metrics;
            c.obs.prov.enabled = v.provenance;
            const RunResult r = runSynthetic(c);
            if (i == 0 || r.wallSeconds < best_wall)
                best_wall = r.wallSeconds;
            cycles = r.cyclesSimulated;
        }
        const double cps =
            best_wall > 0.0 ? static_cast<double>(cycles) / best_wall
                            : 0.0;
        if (baseline_cps == 0.0)
            baseline_cps = cps;
        t.addRow({v.name, Table::num(best_wall, 4),
                  Table::num(cps, 0),
                  Table::num(baseline_cps > 0.0 && cps > 0.0
                                 ? baseline_cps / cps
                                 : 0.0,
                             3)});
        perf.push_back({std::string(archName(arch)) + "/" + v.name,
                        best_wall, cycles});
    }
    t.print(std::cout);
    bench::writeCsv(config, "obs_overhead", t);
    bench::writePerfJson(config, "obs_overhead", perf);
    bench::warnUnused(config);
    return 0;
}
