/**
 * @file
 * Observability-overhead microbenchmark.
 *
 * The PR 3 contract is that observers are *free when off* (a null
 * pointer behind an `if`) and cheap when on. This bench quantifies
 * both halves: it runs the same synthetic point with every
 * observability subsystem off, then with tracing, metrics sampling,
 * and latency provenance individually and all together, and reports
 * wall-clock seconds, simulated cycles/second, and the relative
 * slowdown versus the baseline. The self-profiler (profile=) joins
 * the matrix: its phase timers wrap the hot loop itself, so its
 * overhead — two clock reads per phase scope — is exactly what this
 * bench exists to bound. The digest ledger (digest=) joins too: it
 * re-serializes the entire network state into a scratch buffer and
 * hashes it every digest_interval cycles, an amortized cost this
 * bench bounds at the default stride of 1000. No export files are written during
 * the timed region (exports happen in finishObservability, outside
 * the runner's wall-clock window), so the numbers isolate the hot-path
 * recording cost.
 *
 * Methodology: one *untimed* warm-up pass over every variant, then
 * the timed reps run round-robin across variants (rep 1 of every
 * variant, rep 2 of every variant, ...). Without the warm-up the
 * first variant executed (the "off" baseline) pays one-time process
 * costs — page faults, heap growth, arena population — that later
 * variants inherit for free, which historically made observers-on
 * configs appear *faster* than off; without the interleaving, slow
 * machine phases (frequency ramps, background load) land on whole
 * variants instead of spreading evenly. min/mean/stddev over the
 * timed reps are reported so run-to-run noise is visible instead of
 * silently folded into the comparison.
 *
 * Slowdown is the *median of per-round paired ratios*
 * (wall_variant / wall_off within the same round-robin round), not a
 * ratio of minimums: cheap observers (metrics costs well under 1%)
 * sit below the machine's run-to-run noise floor, and only paired
 * samples — taken adjacent in time, sharing the machine's speed
 * phase — resolve them. The per-variant wall_s/cycles_per_s written
 * to the perf JSON are anchored to the off row's best wall scaled by
 * that paired slowdown, so the exported ordering reflects the paired
 * estimate rather than which variant happened to draw the quietest
 * window; raw per-variant mean/stddev are exported alongside.
 *
 * Usage: bench_obs_overhead [key=value...]
 *   arch=nox rate_mbps=1200 warmup=N measure=N seed=N repeats=5
 *   perf_json=<path>   (PerfRecord JSON; the checked-in baseline is
 *                       bench/baselines/BENCH_obs_overhead.json)
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

struct Variant
{
    const char *name;
    bool trace = false;
    bool metrics = false;
    bool provenance = false;
    bool profile = false;
    bool digest = false;
};

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Observability overhead: tracing / metrics / provenance "
        "on-vs-off",
        config);

    const RouterArch arch =
        parseArch(config.getString("arch", "nox").c_str());
    const double rate = config.getDouble("rate_mbps", 1200.0);
    const int repeats =
        static_cast<int>(config.getInt("repeats", 5));

    const Variant variants[] = {
        {"off", false, false, false, false, false},
        {"trace", true, false, false, false, false},
        {"metrics", false, true, false, false, false},
        {"provenance", false, false, true, false, false},
        {"profile", false, false, false, true, false},
        {"digest", false, false, false, false, true},
        {"all", true, true, true, true, true},
    };

    constexpr std::size_t kVariants =
        sizeof(variants) / sizeof(variants[0]);
    std::vector<SyntheticConfig> configs;
    for (const Variant &v : variants) {
        SyntheticConfig c;
        c.arch = arch;
        c.pattern = PatternKind::UniformRandom;
        c.injectionMBps = rate;
        bench::applyCommon(config, &c);
        c.obs.trace.enabled = v.trace;
        c.obs.metrics.enabled = v.metrics;
        c.obs.prov.enabled = v.provenance;
        c.obs.profile.enabled = v.profile;
        // Digest at the default stride (1000): a full-state hash
        // every thousand cycles, the cost divergence gating pays.
        c.obs.digest.enabled = v.digest;
        configs.push_back(c);
    }

    // Untimed warm-up pass, then reps interleaved round-robin across
    // variants (the minimum is the least-noisy estimator of the true
    // cost on a shared machine; mean/stddev expose the noise floor).
    for (const SyntheticConfig &c : configs)
        (void)runSynthetic(c);
    std::vector<std::vector<double>> walls(kVariants);
    std::vector<std::uint64_t> cycles(kVariants, 0);
    std::vector<std::uint64_t> hops(kVariants, 0);
    for (int i = 0; i < repeats; ++i) {
        // Rotate the starting variant each round: with a fixed order
        // every variant always runs in the same position relative to
        // its neighbours (off always follows the heaviest config of
        // the previous round), and that systematic position effect is
        // the one bias paired ratios cannot cancel.
        for (std::size_t k = 0; k < kVariants; ++k) {
            const std::size_t v =
                (k + static_cast<std::size_t>(i)) % kVariants;
            const RunResult r = runSynthetic(configs[v]);
            walls[v].push_back(r.wallSeconds);
            cycles[v] = r.cyclesSimulated;
            hops[v] = r.flitHops;
        }
    }

    // Paired slowdowns: round i of every variant ran adjacent in
    // time to round i of "off", so the per-round ratio cancels the
    // machine's speed phase; the median over rounds rejects the
    // occasional round that straddles a phase change.
    const double off_best =
        *std::min_element(walls[0].begin(), walls[0].end());
    std::vector<double> slowdowns(kVariants, 1.0);
    for (std::size_t v = 1; v < kVariants; ++v) {
        std::vector<double> ratios;
        for (std::size_t i = 0; i < walls[v].size(); ++i)
            ratios.push_back(walls[v][i] / walls[0][i]);
        std::sort(ratios.begin(), ratios.end());
        const std::size_t n = ratios.size();
        slowdowns[v] = n % 2 == 1
                           ? ratios[n / 2]
                           : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
        // An observer cannot make the simulator faster; a paired
        // median below 1.0 means the cost is beneath the machine's
        // noise floor. Floor at 1.000 so the exported baseline keeps
        // the off-is-fastest invariant the regression check relies on.
        slowdowns[v] = std::max(slowdowns[v], 1.0);
    }

    Table t({"observers", "wall_min_s", "wall_mean_s", "wall_sd_s",
             "cycles/s", "slowdown"});
    std::vector<bench::PerfRecord> perf;
    for (std::size_t v = 0; v < kVariants; ++v) {
        bench::PerfRecord rec;
        rec.label =
            std::string(archName(arch)) + "/" + variants[v].name;
        rec.cycles = cycles[v];
        rec.flitHops = hops[v];
        bench::finishRecordStats(&rec, walls[v]);
        const double raw_min = rec.wallSeconds;
        // Anchor the exported wall to the baseline's best wall scaled
        // by the paired slowdown (see the file header).
        rec.wallSeconds = off_best * slowdowns[v];

        const double cps =
            rec.wallSeconds > 0.0
                ? static_cast<double>(cycles[v]) / rec.wallSeconds
                : 0.0;
        t.addRow({variants[v].name, Table::num(raw_min, 4),
                  Table::num(rec.meanWallSeconds, 4),
                  Table::num(rec.stddevWallSeconds, 4),
                  Table::num(cps, 0), Table::num(slowdowns[v], 3)});
        perf.push_back(std::move(rec));
    }
    t.print(std::cout);
    bench::writeCsv(config, "obs_overhead", t);
    bench::writePerfJson(config, "obs_overhead", perf);
    bench::warnUnused(config);
    return 0;
}
