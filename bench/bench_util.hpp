/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses.
 */

#ifndef NOX_BENCH_BENCH_UTIL_HPP
#define NOX_BENCH_BENCH_UTIL_HPP

#include <array>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace bench {

/** Default injection-rate sweep for the Figure 8/9 axes
 *  [MB/s/node], covering the paper's quoted crossovers (575, 750)
 *  and saturation region (~2775). */
std::vector<double> defaultRates(bool quick);

/** Parse `patterns=` config (default: all eight of §5.1). */
std::vector<PatternKind> patternsFrom(const Config &config);

/** Parse `archs=` config (default: all four). */
std::vector<RouterArch> archsFrom(const Config &config);

/** Parse `workloads=` config (default: the built-in ten). */
std::vector<std::string> workloadsFrom(const Config &config);

/** Apply warmup/measure/seed/scheduling overrides from config. */
void applyCommon(const Config &config, SyntheticConfig *synth);

/** One simulator-performance sample for writePerfJson(). */
struct PerfRecord
{
    std::string label;      ///< e.g. "NoX/uniform/activity"
    double wallSeconds = 0.0; ///< best (minimum) timed rep
    std::uint64_t cycles = 0;
    std::uint64_t flitHops = 0; ///< measurement-window flit-hops
    // Multi-rep statistics (reps == 0 means single-shot: only the
    // fields above are meaningful and the JSON omits the rest).
    int reps = 0;               ///< timed reps behind the statistics
    double meanWallSeconds = 0.0;
    double stddevWallSeconds = 0.0;
    // Self-profiling phase breakdown (profile= runs only; the JSON
    // gains a "phases" object when profiled is set).
    bool profiled = false;
    std::array<double, kNumSimPhases> phaseSeconds{};
    double profileCoverage = 0.0;
};

/** Accumulate best/mean/stddev over timed reps into @p record. */
void finishRecordStats(PerfRecord *record,
                       const std::vector<double> &wallSamples);

/** Copy a profiled run's phase breakdown into @p record. */
void recordProfile(PerfRecord *record, const RunResult &result);

/** Host identity for perf-baseline comparability: CPU model, core
 *  count, cpufreq governor ("unknown" where unreadable). The
 *  regression gate warns when a baseline was recorded on a
 *  different host. */
struct HostFingerprint
{
    std::string cpu = "unknown";
    int cores = 0;
    std::string governor = "unknown";
};

/** Read this host's fingerprint (/proc + sysfs; cached). */
const HostFingerprint &hostFingerprint();

/**
 * If `perf_json=<path>` is configured, write the simulator
 * performance records (wall-clock seconds, simulated cycles, and
 * derived cycles/second) as a JSON document at that path — the
 * artifact CI uploads from the bench-smoke step.
 */
void writePerfJson(const Config &config, const std::string &bench,
                   const std::vector<PerfRecord> &records);

/** Offered-rate sweep from config (`rates=` or quick/full default). */
std::vector<double> ratesFrom(const Config &config);

/** Emit a standard bench header with run parameters. */
void printHeader(const std::string &title, const Config &config);

/**
 * If `csv_dir=<path>` is configured, write @p table to
 * `<path>/<name>.csv` (directory must exist) for plot scripts
 * (scripts/plot_figures.py consumes these).
 */
void writeCsv(const Config &config, const std::string &name,
              const Table &table);

/** Warn about config keys that were never consumed. */
void warnUnused(const Config &config);

} // namespace bench
} // namespace nox

#endif // NOX_BENCH_BENCH_UTIL_HPP
