/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot components:
 * decode state machine, arbiters, route computation, and whole-router
 * evaluation throughput per architecture (simulated router-cycles per
 * wall-clock second). Useful for keeping the cycle-accurate model
 * fast enough for the full Figure 8/9 sweeps.
 */

#include <benchmark/benchmark.h>

#include "noc/network.hpp"
#include "noc/xor_decoder.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"

namespace nox {
namespace {

FlitDesc
mkFlit(PacketId p)
{
    FlitDesc d;
    d.uid = flitUid(p, 0);
    d.packet = p;
    d.payload = expectedPayload(p, 0);
    d.dest = 1;
    return d;
}

void
BM_XorDecoderChain(benchmark::State &state)
{
    for (auto _ : state) {
        FlitFifo fifo(8);
        fifo.push(WireFlit::combine({mkFlit(1), mkFlit(2), mkFlit(3)}));
        fifo.push(WireFlit::combine({mkFlit(2), mkFlit(3)}));
        fifo.push(WireFlit::fromDesc(mkFlit(3)));
        XorDecoder dec;
        int delivered = 0;
        while (delivered < 3) {
            const DecodeView v = dec.view(fifo);
            if (v.latchBubble) {
                dec.latch(fifo);
                continue;
            }
            if (v.presented) {
                benchmark::DoNotOptimize(v.presented->payload);
                dec.accept(fifo);
                ++delivered;
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_XorDecoderChain);

void
BM_RoundRobinArbiter(benchmark::State &state)
{
    RoundRobinArbiter arb(5);
    RequestMask mask = 0b10110;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arb.grant(mask));
        mask = (mask * 2654435761u) & 0b11111;
        mask |= (mask == 0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundRobinArbiter);

void
BM_DorRoute(benchmark::State &state)
{
    const Mesh mesh(8, 8);
    NodeId cur = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dorRoute(mesh, cur, 63 - cur));
        cur = (cur + 1) % 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DorRoute);

void
BM_NetworkCycle(benchmark::State &state)
{
    const auto arch = static_cast<RouterArch>(state.range(0));
    NetworkParams params;
    auto net = makeNetwork(params, arch);
    const DestinationPattern local_pattern(PatternKind::UniformRandom,
                                           net->mesh());
    Rng seeder(1);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, local_pattern, 0.15, 1, seeder.next()));
    }
    net->run(2000); // warm
    for (auto _ : state)
        net->step();
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel(archName(arch));
}
BENCHMARK(BM_NetworkCycle)->DenseRange(0, 3, 1);

} // namespace
} // namespace nox

BENCHMARK_MAIN();
