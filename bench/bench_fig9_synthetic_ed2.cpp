/**
 * @file
 * Figure 9 — synthetic traffic energy-delay^2.
 *
 * Same sweep axes as Figure 8, but reporting the paper's ED^2 metric
 * (average packet energy [pJ] x average latency^2 [ns^2]). The paper
 * observes that the Figure-8 trends are amplified here because the
 * NoX/non-speculative routers avoid misspeculation link energy.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace nox {
namespace {

void
runPattern(PatternKind pattern, bool self_similar,
           const std::vector<RouterArch> &archs,
           const std::vector<double> &rates, const Config &config)
{
    std::cout << "--- Figure 9: "
              << (self_similar ? "selfsimilar"
                               : patternName(pattern))
              << " traffic, energy-delay^2 [pJ*ns^2] ---\n";

    std::vector<std::string> headers{"MB/s/node"};
    for (RouterArch a : archs)
        headers.push_back(archName(a));
    Table table(headers);

    for (double rate : rates) {
        std::vector<std::string> row{Table::num(rate, 0)};
        for (RouterArch arch : archs) {
            SyntheticConfig c;
            c.arch = arch;
            c.pattern = pattern;
            c.selfSimilar = self_similar;
            c.injectionMBps = rate;
            bench::applyCommon(config, &c);
            const RunResult r = runSynthetic(c);
            row.push_back(r.saturated ? "sat"
                                      : Table::num(r.ed2, 0));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    bench::writeCsv(config, std::string("fig9_") +
                                (self_similar ? "selfsimilar"
                                              : patternName(pattern)),
                    table);
    std::cout << '\n';
}

} // namespace
} // namespace nox

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Figure 9: synthetic traffic energy-delay^2 vs injection "
        "bandwidth",
        config);

    const auto archs = bench::archsFrom(config);
    const auto rates = bench::ratesFrom(config);
    for (PatternKind p : bench::patternsFrom(config))
        runPattern(p, false, archs, rates, config);
    runPattern(PatternKind::UniformRandom, true, archs, rates,
               config);

    bench::warnUnused(config);
    return 0;
}
