/**
 * @file
 * §6.2 / Figure 13 — router tile floorplans and the NoX area
 * overhead (paper: +28.2 um horizontal for decode+masking, +17.2%
 * total tile area).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "power/area_model.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader("Figure 13 / §6.2: router floorplan areas",
                       config);

    const Technology tech = Technology::tsmc65();
    const PhysicalParams phys;
    const AreaModel am(tech, phys);

    for (RouterArch arch :
         {RouterArch::NonSpeculative, RouterArch::Nox}) {
        const AreaBreakdown b = am.breakdown(arch);
        std::cout << "--- "
                  << (arch == RouterArch::Nox ? "NoX"
                                              : "conventional")
                  << " router tile ---\n";
        Table table({"block", "width [um]", "area [um^2]"});
        for (const auto &blk : b.blocks) {
            table.addRow({blk.name, Table::num(blk.widthUm, 1),
                          Table::num(blk.areaUm2, 0)});
        }
        table.addRow({"TOTAL (" + Table::num(b.widthUm, 1) + " x " +
                          Table::num(b.heightUm, 1) + ")",
                      Table::num(b.widthUm, 1),
                      Table::num(b.areaUm2(), 0)});
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "NoX decode+masking column width: "
              << Table::num(am.decodeMaskWidthUm(), 1)
              << " um  [paper: 28.2 um]\n";
    std::cout << "NoX tile area overhead: "
              << Table::num(am.noxOverheadFraction() * 100.0, 1)
              << "%  [paper: 17.2%]\n";

    bench::warnUnused(config);
    return 0;
}
