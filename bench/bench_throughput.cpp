/**
 * @file
 * Simulator-throughput macrobenchmark (host performance, not NoC
 * performance): how many simulated cycles/second and flit-hops/second
 * the engine sustains per architecture and traffic pattern, with all
 * observers off. This is the number the data-oriented hot path is
 * optimised for, and the one the CI regression gate watches
 * (scripts/check_perf_regression.py against
 * bench/baselines/BENCH_throughput.json).
 *
 * Methodology matches bench_obs_overhead: one untimed warm-up pass
 * over every configuration (first-run page faults, heap growth and
 * flit-arena population are one-time process costs, not steady-state
 * costs), then timed reps interleaved round-robin across
 * configurations so slow machine phases spread evenly instead of
 * landing on whole rows; reported as min/mean/stddev.
 *
 * Usage: bench_throughput [key=value...]
 *   archs=nonspec,specfast,specaccurate,nox patterns=uniform,transpose
 *   rate_mbps=1200 warmup=N measure=N seed=N repeats=3
 *   profile=true       (time with the self-profiler on and export the
 *                       per-phase breakdown; not the baseline config)
 *   perf_json=<path>   (PerfRecord JSON; the checked-in baseline is
 *                       bench/baselines/BENCH_throughput.json)
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Simulator throughput: cycles/s and flit-hops/s by "
        "architecture and pattern (observers off)",
        config);

    const double rate = config.getDouble("rate_mbps", 1200.0);
    const int repeats =
        static_cast<int>(config.getInt("repeats", 3));
    // profile=true times the run *with* the self-profiler enabled and
    // exports the per-phase breakdown in the perf JSON. Off by
    // default: the checked-in baseline is an observers-off number.
    const bool profile = config.getBool("profile", false);
    const std::vector<RouterArch> archs = bench::archsFrom(config);
    // Default to a bounded pattern pair (the full eight make this a
    // multi-minute run); `patterns=` overrides.
    std::vector<PatternKind> patterns;
    if (config.getStringList("patterns").empty()) {
        patterns = {PatternKind::UniformRandom, PatternKind::Transpose};
    } else {
        patterns = bench::patternsFrom(config);
    }

    struct Point
    {
        RouterArch arch;
        PatternKind pattern;
        SyntheticConfig config;
    };
    std::vector<Point> points;
    for (const RouterArch arch : archs) {
        for (const PatternKind pattern : patterns) {
            SyntheticConfig c;
            c.arch = arch;
            c.pattern = pattern;
            c.injectionMBps = rate;
            bench::applyCommon(config, &c);
            c.obs.profile.enabled = profile;
            points.push_back({arch, pattern, c});
        }
    }

    for (const Point &pt : points)
        (void)runSynthetic(pt.config); // untimed warm-up pass
    std::vector<std::vector<double>> walls(points.size());
    std::vector<std::uint64_t> cycles(points.size(), 0);
    std::vector<std::uint64_t> hops(points.size(), 0);
    std::vector<RunResult> results(points.size());
    for (int i = 0; i < repeats; ++i) {
        // Rotate the starting point each round so no configuration is
        // pinned to a fixed position relative to machine-speed phases
        // (see bench_obs_overhead for the full rationale).
        for (std::size_t j = 0; j < points.size(); ++j) {
            const std::size_t k =
                (j + static_cast<std::size_t>(i)) % points.size();
            const RunResult r = runSynthetic(points[k].config);
            walls[k].push_back(r.wallSeconds);
            cycles[k] = r.cyclesSimulated;
            hops[k] = r.flitHops;
            results[k] = r;
        }
    }

    Table t({"arch", "pattern", "wall_min_s", "wall_mean_s",
             "wall_sd_s", "cycles/s", "flit-hops/s"});
    std::vector<bench::PerfRecord> perf;
    for (std::size_t k = 0; k < points.size(); ++k) {
        const Point &pt = points[k];
        bench::PerfRecord rec;
        rec.label = std::string(archName(pt.arch)) + "/" +
                    patternName(pt.pattern);
        rec.cycles = cycles[k];
        rec.flitHops = hops[k];
        bench::finishRecordStats(&rec, walls[k]);
        bench::recordProfile(&rec, results[k]);

        const double cps =
            rec.wallSeconds > 0.0
                ? static_cast<double>(cycles[k]) / rec.wallSeconds
                : 0.0;
        const double hps =
            rec.wallSeconds > 0.0
                ? static_cast<double>(hops[k]) / rec.wallSeconds
                : 0.0;
        t.addRow({archName(pt.arch), patternName(pt.pattern),
                  Table::num(rec.wallSeconds, 4),
                  Table::num(rec.meanWallSeconds, 4),
                  Table::num(rec.stddevWallSeconds, 4),
                  Table::num(cps, 0), Table::num(hps, 0)});
        perf.push_back(std::move(rec));
    }
    t.print(std::cout);
    bench::writeCsv(config, "throughput", t);
    bench::writePerfJson(config, "throughput", perf);
    bench::warnUnused(config);
    return 0;
}
