/**
 * @file
 * Figure 10 — application average packet latency (plus Table 1).
 *
 * Generates a coherence packet trace per workload with the built-in
 * 64-core CMP model (the SPLASH-2/SPEC/TPC substitution documented in
 * DESIGN.md), then replays the identical trace through request+reply
 * networks of each router architecture at its own clock frequency
 * (§5.2 methodology). Reports average network latency [ns]; total
 * latency including source queueing is available via `total=true`.
 */

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "coherence/trace_generator.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader("Figure 10: application average packet latency",
                       config);

    CmpParams params;
    std::cout << "--- Table 1: Common System Parameters ---\n";
    params.printTable(std::cout);
    std::cout << '\n';

    const bool quick = config.getBool("quick", false);
    const double horizon =
        config.getDouble("horizon_ns", quick ? 8000.0 : 25000.0);
    const double warmup =
        config.getDouble("trace_warmup_ns", quick ? 20000.0 : 50000.0);
    const bool report_total = config.getBool("total", false);
    const std::uint64_t seed = config.getUint("seed", 99);

    const auto archs = bench::archsFrom(config);
    std::vector<std::string> headers{"workload", "GB/s/node", "ctrl%"};
    for (RouterArch a : archs)
        headers.push_back(archName(a));
    Table table(headers);

    std::map<RouterArch, double> latency_sum;
    int workload_count = 0;

    for (const auto &name : bench::workloadsFrom(config)) {
        CoherenceTraceGenerator gen(params, findWorkload(name), seed);
        const Trace trace = gen.generate(horizon, warmup);
        const double load = trace.bytesPerNsPerNode(64, 0) +
                            trace.bytesPerNsPerNode(64, 1);
        std::size_t ctrl = 0;
        for (const auto &r : trace.records)
            ctrl += (r.sizeBytes <= 8);

        std::vector<std::string> row{
            name, Table::num(load, 2),
            Table::num(100.0 * static_cast<double>(ctrl) /
                           static_cast<double>(trace.records.size()),
                       1)};
        for (RouterArch arch : archs) {
            AppConfig c;
            c.arch = arch;
            const AppResult r = runApplication(c, trace);
            const double lat =
                report_total ? r.avgTotalLatencyNs : r.avgLatencyNs;
            row.push_back(Table::num(lat, 2));
            latency_sum[arch] += lat;
        }
        table.addRow(std::move(row));
        ++workload_count;
    }
    std::cout << "--- Figure 10: average packet "
              << (report_total ? "total" : "network")
              << " latency [ns] ---\n";
    table.print(std::cout);
    bench::writeCsv(config, "fig10_app_latency", table);

    std::cout << "\nmean over workloads: ";
    for (RouterArch a : archs) {
        std::cout << archName(a) << "="
                  << Table::num(latency_sum[a] / workload_count, 2)
                  << "ns  ";
    }
    std::cout << '\n';

    bench::warnUnused(config);
    return 0;
}
