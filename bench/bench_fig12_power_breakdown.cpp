/**
 * @file
 * Figure 12 — total network dynamic power for 2 GB/s/node single-flit
 * uniform random traffic, broken into link / switch / buffer /
 * control / decode / clock components.
 *
 * Paper observations to compare against:
 *   - link power dominates, ~74% of all router power;
 *   - Spec-Accurate consumes ~4.6% more link energy but ~2.4% less
 *     switch energy than NoX, for ~2.5% more total power;
 *   - NoX decode energy is minimal;
 *   - Spec-Fast omitted (saturates below this load).
 */

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace nox;

    Config config;
    config.parseArgs(argc, argv);
    bench::printHeader(
        "Figure 12: network dynamic power @ 2 GB/s/node uniform",
        config);

    const double rate = config.getDouble("rate_mbps", 2000.0);

    // The paper omits Spec-Fast here (its saturation bandwidth is
    // below the 2 GB/s/node operating point). Keep the same set
    // unless overridden.
    std::vector<RouterArch> archs;
    if (config.has("archs")) {
        archs = bench::archsFrom(config);
    } else {
        archs = {RouterArch::NonSpeculative, RouterArch::SpecAccurate,
                 RouterArch::Nox};
    }

    Table table({"component", "NonSpec [W]", "Spec-Accurate [W]",
                 "NoX [W]"});
    std::map<RouterArch, EnergyBreakdown> breakdowns;
    std::map<RouterArch, double> power;
    std::map<RouterArch, double> window_ns;
    std::map<RouterArch, bool> saturated;

    for (RouterArch arch : archs) {
        SyntheticConfig c;
        c.arch = arch;
        c.pattern = PatternKind::UniformRandom;
        c.injectionMBps = rate;
        bench::applyCommon(config, &c);
        const RunResult r = runSynthetic(c);
        breakdowns[arch] = r.energy;
        power[arch] = r.powerW;
        saturated[arch] = r.saturated;
        window_ns[arch] =
            static_cast<double>(c.measureCycles) * r.periodNs;
    }

    auto watts = [&](RouterArch a, double pj) {
        return window_ns.at(a) > 0.0 ? pj / window_ns.at(a) * 1e-3
                                     : 0.0;
    };
    auto row = [&](const char *name, auto accessor) {
        std::vector<std::string> r{name};
        for (RouterArch a : {RouterArch::NonSpeculative,
                             RouterArch::SpecAccurate,
                             RouterArch::Nox}) {
            if (!breakdowns.count(a)) {
                r.push_back("-");
                continue;
            }
            r.push_back(
                Table::num(watts(a, accessor(breakdowns.at(a))), 3));
        }
        table.addRow(std::move(r));
    };

    row("links (inter-tile)",
        [](const EnergyBreakdown &b) { return b.linkPj; });
    row("links (NIC-side)",
        [](const EnergyBreakdown &b) { return b.localPj; });
    row("input buffers",
        [](const EnergyBreakdown &b) { return b.bufferPj; });
    row("crossbar switch",
        [](const EnergyBreakdown &b) { return b.xbarPj; });
    row("arbitration+masks",
        [](const EnergyBreakdown &b) { return b.arbPj; });
    row("xor decode",
        [](const EnergyBreakdown &b) { return b.decodePj; });
    row("clock",
        [](const EnergyBreakdown &b) { return b.clockPj; });
    row("TOTAL", [](const EnergyBreakdown &b) { return b.totalPj(); });
    table.print(std::cout);

    for (RouterArch a : archs) {
        if (saturated[a])
            std::cout << "note: " << archName(a)
                      << " is saturated at this load\n";
    }

    if (breakdowns.count(RouterArch::Nox)) {
        const EnergyBreakdown &nox_b = breakdowns.at(RouterArch::Nox);
        std::cout << "\nlink share of NoX total: "
                  << Table::num(nox_b.linkFraction() * 100.0, 1)
                  << "%   [paper: ~74%]\n";
        if (breakdowns.count(RouterArch::SpecAccurate)) {
            const EnergyBreakdown &acc =
                breakdowns.at(RouterArch::SpecAccurate);
            std::cout << "Spec-Accurate vs NoX: link "
                      << Table::num(
                             (acc.linkPj / nox_b.linkPj - 1.0) * 100,
                             1)
                      << "% [paper: +4.6%], switch "
                      << Table::num(
                             (acc.xbarPj / nox_b.xbarPj - 1.0) * 100,
                             1)
                      << "% [paper: -2.4%], total power "
                      << Table::num((power[RouterArch::SpecAccurate] /
                                         power[RouterArch::Nox] -
                                     1.0) *
                                        100,
                                    1)
                      << "% [paper: +2.5%]\n";
        }
    }

    bench::warnUnused(config);
    return 0;
}
